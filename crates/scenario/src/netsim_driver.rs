//! The netsim backend: compile a [`Scenario`] into a [`ScenarioDriver`] app
//! that replays the script inside the discrete-event simulator.
//!
//! Every scripted action is scheduled through [`netsim::SimApi::schedule_in`],
//! i.e. as an ordinary `AppTimer` engine event. That keeps the replay on the
//! engine's own clock and tie-break order, so both scheduler implementations
//! (`EngineKind::Heap` and `EngineKind::Calendar`) execute the scenario
//! byte-identically.

use netsim::app::App;
use netsim::link::LinkSpec;
use netsim::sim::SimApi;
use netsim::time::{secs, SimTime};
use netsim::{FlowId, LinkId};

use crate::timeline::{Event, Scenario};

/// How one scenario path maps onto simulator objects.
#[derive(Debug, Clone, Default)]
pub struct PathBinding {
    /// Links that carry the path's traffic (typically the bottleneck link and
    /// its reverse direction). Down/rate/delay/loss events apply to all of
    /// them; rate events scale each link's own base rate.
    pub links: Vec<LinkId>,
    /// Pre-provisioned idle flows reserved for [`Event::FlashCrowd`] events
    /// on this path, in the order crowds appear in the script. Must hold at
    /// least [`Scenario::flash_flows_for`] entries.
    pub flash_flows: Vec<FlowId>,
}

/// One compiled, timestamped action.
#[derive(Debug, Clone, Copy)]
enum ActionKind {
    Down,
    Up,
    /// Set every bound link's rate to `factor ×` its captured base rate.
    Rate(f64),
    /// Set every bound link's delay to `factor ×` its captured base delay.
    Delay(f64),
    /// Set absolute random loss on every bound link.
    Loss(f64),
    /// Restore every bound link's base random loss.
    LossClear,
    /// Un-idle `n` pre-provisioned flash flows starting at index `first`.
    FlashStart {
        first: usize,
        n: usize,
    },
    /// Drain and stop the same flows.
    FlashStop {
        first: usize,
        n: usize,
    },
}

#[derive(Debug, Clone, Copy)]
struct Action {
    at: SimTime,
    path: usize,
    kind: ActionKind,
}

/// A [`netsim`] app that replays a [`Scenario`] against bound links/flows.
///
/// Attach it with `Sim::add_app` after building the topology:
///
/// ```ignore
/// sim.add_app(Box::new(ScenarioDriver::new(scenario, bindings, secs(warmup_s))));
/// ```
#[derive(Debug)]
pub struct ScenarioDriver {
    bindings: Vec<PathBinding>,
    actions: Vec<Action>,
    /// Base [`LinkSpec`] per binding link, captured at `start()` — factors in
    /// the script are always relative to these, never cumulative.
    base: Vec<Vec<LinkSpec>>,
    offset: SimTime,
}

impl ScenarioDriver {
    /// Compile `scenario` against `bindings`. `offset` shifts every event
    /// time (which is relative to video start) onto the simulation clock —
    /// pass the warm-up duration.
    ///
    /// Panics if the script fails [`Scenario::validate`] for the bound path
    /// count or a path has fewer pre-provisioned flash flows than the script
    /// needs.
    pub fn new(scenario: &Scenario, bindings: Vec<PathBinding>, offset: SimTime) -> Self {
        scenario
            .validate(bindings.len())
            .expect("scenario does not fit the bound topology");
        for (p, b) in bindings.iter().enumerate() {
            assert!(
                b.flash_flows.len() >= scenario.flash_flows_for(p),
                "path {p}: {} flash flows bound, script needs {}",
                b.flash_flows.len(),
                scenario.flash_flows_for(p)
            );
        }

        let mut actions = Vec::new();
        // Current scripted rate factor per path, so ramps interpolate from
        // wherever the script last left the rate.
        let mut rate_factor = vec![1.0_f64; bindings.len()];
        // Next free pre-provisioned flash flow per path.
        let mut flash_cursor = vec![0_usize; bindings.len()];

        for e in &scenario.events {
            let at = secs(e.at_s);
            let path = e.path;
            match e.event {
                Event::PathDown => actions.push(Action {
                    at,
                    path,
                    kind: ActionKind::Down,
                }),
                Event::PathUp => actions.push(Action {
                    at,
                    path,
                    kind: ActionKind::Up,
                }),
                Event::RateStep { factor } => {
                    rate_factor[path] = factor;
                    actions.push(Action {
                        at,
                        path,
                        kind: ActionKind::Rate(factor),
                    });
                }
                Event::RateRamp {
                    factor,
                    over_s,
                    steps,
                } => {
                    let from = rate_factor[path];
                    for i in 1..=steps {
                        let frac = f64::from(i) / f64::from(steps);
                        actions.push(Action {
                            at: at + secs(over_s * frac),
                            path,
                            kind: ActionKind::Rate(from + (factor - from) * frac),
                        });
                    }
                    rate_factor[path] = factor;
                }
                Event::DelayStep { factor } => {
                    actions.push(Action {
                        at,
                        path,
                        kind: ActionKind::Delay(factor),
                    });
                }
                Event::LossEpisode { loss, duration_s } => {
                    actions.push(Action {
                        at,
                        path,
                        kind: ActionKind::Loss(loss),
                    });
                    actions.push(Action {
                        at: at + secs(duration_s),
                        path,
                        kind: ActionKind::LossClear,
                    });
                }
                Event::FlashCrowd {
                    n_flows,
                    duration_s,
                } => {
                    let first = flash_cursor[path];
                    let n = n_flows as usize;
                    flash_cursor[path] += n;
                    actions.push(Action {
                        at,
                        path,
                        kind: ActionKind::FlashStart { first, n },
                    });
                    actions.push(Action {
                        at: at + secs(duration_s),
                        path,
                        kind: ActionKind::FlashStop { first, n },
                    });
                }
            }
        }

        Self {
            bindings,
            actions,
            base: Vec::new(),
            offset,
        }
    }

    /// Number of compiled actions (ramps and episodes expand to several).
    pub fn action_count(&self) -> usize {
        self.actions.len()
    }

    fn apply(&self, api: &mut SimApi<'_>, idx: usize) {
        let Action { path, kind, .. } = self.actions[idx];
        let b = &self.bindings[path];
        if api.trace_enabled() {
            // Announce the scripted cause before its effects (e.g. the queue
            // flush a PathDown triggers) hit the trace.
            let action = match kind {
                ActionKind::Down => obs::PathAction::Down,
                ActionKind::Up => obs::PathAction::Up,
                ActionKind::Rate(_) => obs::PathAction::Rate,
                ActionKind::Delay(_) => obs::PathAction::Delay,
                ActionKind::Loss(_) => obs::PathAction::Loss,
                ActionKind::LossClear => obs::PathAction::LossClear,
                ActionKind::FlashStart { .. } => obs::PathAction::FlashStart,
                ActionKind::FlashStop { .. } => obs::PathAction::FlashStop,
            };
            api.trace_emit(obs::EventKind::PathEvent {
                path: path as u32,
                action,
            });
        }
        match kind {
            ActionKind::Down => {
                for &l in &b.links {
                    api.set_link_down(l);
                }
            }
            ActionKind::Up => {
                for &l in &b.links {
                    api.set_link_up(l);
                }
            }
            ActionKind::Rate(factor) => {
                for (i, &l) in b.links.iter().enumerate() {
                    api.set_link_rate(l, self.base[path][i].bandwidth_bps * factor);
                }
            }
            ActionKind::Delay(factor) => {
                for (i, &l) in b.links.iter().enumerate() {
                    let base = self.base[path][i].delay;
                    api.set_link_delay(l, (base as f64 * factor).round() as SimTime);
                }
            }
            ActionKind::Loss(p) => {
                for &l in &b.links {
                    api.set_link_loss(l, p);
                }
            }
            ActionKind::LossClear => {
                for (i, &l) in b.links.iter().enumerate() {
                    api.set_link_loss(l, self.base[path][i].random_loss);
                }
            }
            ActionKind::FlashStart { first, n } => {
                for &flow in &b.flash_flows[first..first + n] {
                    api.set_backlogged(flow, None);
                }
            }
            ActionKind::FlashStop { first, n } => {
                for &flow in &b.flash_flows[first..first + n] {
                    // remaining = Some(0): stop generating, drain in-flight.
                    api.set_backlogged(flow, Some(0));
                }
            }
        }
    }
}

impl App for ScenarioDriver {
    fn start(&mut self, api: &mut SimApi<'_>) {
        self.base = self
            .bindings
            .iter()
            .map(|b| b.links.iter().map(|&l| api.link_spec(l)).collect())
            .collect();
        for (idx, a) in self.actions.iter().enumerate() {
            api.schedule_in(self.offset + a.at, idx as u64);
        }
    }

    fn on_timer(&mut self, api: &mut SimApi<'_>, tag: u64) {
        self.apply(api, tag as usize);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::link::LinkSpec;
    use netsim::scheduler::EngineKind;
    use netsim::sim::Sim;
    use netsim::tcp::{SinkConfig, TcpConfig};
    use netsim::time::{millis, SECOND};

    /// Two nodes joined by a duplex bottleneck. Returns
    /// (sim, video_flow, flash_flows, fwd, rev).
    fn build(engine: EngineKind, n_flash: usize) -> (Sim, FlowId, Vec<FlowId>, LinkId, LinkId) {
        let mut sim = Sim::with_engine(7, engine);
        let src = sim.add_node("src");
        let dst = sim.add_node("dst");
        let (fwd, rev) = sim.add_duplex(src, dst, LinkSpec::from_table(2.0, 5.0, 50));
        sim.add_route(src, dst, fwd);
        sim.add_route(dst, src, rev);
        let video = sim.add_flow(src, dst, TcpConfig::default(), SinkConfig::default());
        let flash: Vec<FlowId> = (0..n_flash)
            .map(|_| sim.add_flow(src, dst, TcpConfig::default(), SinkConfig::default()))
            .collect();
        (sim, video, flash, fwd, rev)
    }

    struct Backlog(FlowId);
    impl App for Backlog {
        fn start(&mut self, api: &mut SimApi<'_>) {
            api.set_backlogged(self.0, None);
        }
    }

    fn delivered(sim: &Sim, flow: FlowId) -> u64 {
        sim.sink(flow).stats.delivered
    }

    #[test]
    fn ramp_expands_from_current_factor() {
        let s = Scenario::named("r")
            .at(0.0, 0, Event::RateStep { factor: 0.5 })
            .at(
                10.0,
                0,
                Event::RateRamp {
                    factor: 1.0,
                    over_s: 4.0,
                    steps: 4,
                },
            );
        let d = ScenarioDriver::new(
            &s,
            vec![PathBinding {
                links: vec![],
                flash_flows: vec![],
            }],
            0,
        );
        // 1 step + 4 ramp sub-steps.
        assert_eq!(d.action_count(), 5);
        let factors: Vec<f64> = d
            .actions
            .iter()
            .filter_map(|a| match a.kind {
                ActionKind::Rate(f) => Some(f),
                _ => None,
            })
            .collect();
        assert_eq!(factors, vec![0.5, 0.625, 0.75, 0.875, 1.0]);
    }

    #[test]
    fn scripted_down_and_recovery_shapes_throughput() {
        for engine in [EngineKind::Heap, EngineKind::Calendar] {
            let (mut sim, video, _, fwd, rev) = build(engine, 0);
            sim.add_app(Box::new(Backlog(video)));
            let s =
                Scenario::named("failover")
                    .at(10.0, 0, Event::PathDown)
                    .at(16.0, 0, Event::PathUp);
            sim.add_app(Box::new(ScenarioDriver::new(
                &s,
                vec![PathBinding {
                    links: vec![fwd, rev],
                    flash_flows: vec![],
                }],
                0,
            )));
            sim.run_until(10 * SECOND);
            let before = delivered(&sim, video);
            sim.run_until(15 * SECOND);
            let mid = delivered(&sim, video);
            sim.run_until(40 * SECOND);
            let after = delivered(&sim, video);
            assert!(before > 500, "no traffic before outage: {before}");
            assert!(mid - before < 20, "outage not enforced: {before}..{mid}");
            assert!(
                after - mid > 500,
                "no recovery after PathUp: {mid}..{after}"
            );
        }
    }

    #[test]
    fn flash_crowd_steals_bandwidth_then_returns_it() {
        let (mut sim, video, flash, fwd, rev) = build(EngineKind::Calendar, 4);
        sim.add_app(Box::new(Backlog(video)));
        let s = Scenario::named("crowd").at(
            20.0,
            0,
            Event::FlashCrowd {
                n_flows: 4,
                duration_s: 20.0,
            },
        );
        sim.add_app(Box::new(ScenarioDriver::new(
            &s,
            vec![PathBinding {
                links: vec![fwd, rev],
                flash_flows: flash,
            }],
            0,
        )));
        sim.run_until(20 * SECOND);
        let t20 = delivered(&sim, video);
        sim.run_until(40 * SECOND);
        let t40 = delivered(&sim, video);
        sim.run_until(60 * SECOND);
        let t60 = delivered(&sim, video);
        let alone = t20; // pkts/20s with the path to itself
        let crowded = t40 - t20;
        let recovered = t60 - t40;
        assert!(
            (crowded as f64) < 0.55 * alone as f64,
            "crowd did not bite: alone={alone} crowded={crowded}"
        );
        assert!(
            (recovered as f64) > 0.8 * alone as f64,
            "bandwidth not returned: alone={alone} recovered={recovered}"
        );
    }

    #[test]
    fn loss_episode_applies_and_clears() {
        let (mut sim, video, _, fwd, _) = build(EngineKind::Calendar, 0);
        sim.add_app(Box::new(Backlog(video)));
        let s = Scenario::named("lossy").at(
            5.0,
            0,
            Event::LossEpisode {
                loss: 0.05,
                duration_s: 10.0,
            },
        );
        sim.add_app(Box::new(ScenarioDriver::new(
            &s,
            // Loss on the forward (data) direction only.
            vec![PathBinding {
                links: vec![fwd],
                flash_flows: vec![],
            }],
            0,
        )));
        sim.run_until(30 * SECOND);
        let drops = sim.counters().random_loss_drops;
        assert!(drops > 10, "loss episode injected nothing: {drops}");
        assert_eq!(sim.link(fwd).stats.random_dropped, drops);
        // After the episode the spec is restored to lossless.
        assert_eq!(sim.link(fwd).spec.random_loss, 0.0);
    }

    #[test]
    fn offset_shifts_the_whole_script() {
        let (mut sim, video, _, fwd, rev) = build(EngineKind::Heap, 0);
        sim.add_app(Box::new(Backlog(video)));
        let s = Scenario::named("late").at(0.0, 0, Event::PathDown);
        sim.add_app(Box::new(ScenarioDriver::new(
            &s,
            vec![PathBinding {
                links: vec![fwd, rev],
                flash_flows: vec![],
            }],
            12 * SECOND,
        )));
        sim.run_until(12 * SECOND - millis(1.0));
        let before = delivered(&sim, video);
        assert!(
            before > 1000,
            "traffic should flow until the offset: {before}"
        );
        sim.run_until(30 * SECOND);
        let after = delivered(&sim, video);
        assert!(
            after - before < 20,
            "down should fire at offset: {before}..{after}"
        );
    }
}
