//! The timeline DSL: scripted network events, a canonical serialized text
//! form (round-trips through [`Scenario::parse`]), and a stable hash for
//! content-addressed cache keys.

use std::fmt;

/// One scripted network event, applied to a path at a point in time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// Administratively fail the path: its bottleneck queue is flushed and
    /// every subsequent packet is blackholed until [`Event::PathUp`].
    PathDown,
    /// Restore a failed path.
    PathUp,
    /// Set the path's bottleneck rate to `factor ×` its configured base rate
    /// (a step; `factor` is absolute w.r.t. the base, not cumulative).
    RateStep {
        /// Multiplier on the base bottleneck rate (must be > 0).
        factor: f64,
    },
    /// Ramp the rate factor linearly from its current scripted value to
    /// `factor`, in `steps` equal sub-steps over `over_s` seconds.
    RateRamp {
        /// Target multiplier on the base bottleneck rate (must be > 0).
        factor: f64,
        /// Ramp duration, seconds.
        over_s: f64,
        /// Number of discrete sub-steps the ramp is quantised into.
        steps: u32,
    },
    /// Set the path's one-way propagation delay to `factor ×` its base value.
    DelayStep {
        /// Multiplier on the base propagation delay (must be ≥ 0).
        factor: f64,
    },
    /// Add Bernoulli random loss `loss` on the path for `duration_s` seconds,
    /// after which the base loss rate is restored.
    LossEpisode {
        /// Loss probability during the episode, in `[0, 1)`.
        loss: f64,
        /// Episode length, seconds.
        duration_s: f64,
    },
    /// A flash crowd: `n_flows` extra backlogged TCP flows join the path's
    /// bottleneck for `duration_s` seconds, then stop.
    FlashCrowd {
        /// Number of competing flows that join.
        n_flows: u32,
        /// How long they stay, seconds.
        duration_s: f64,
    },
}

/// An [`Event`] bound to a path and a time (seconds after video start).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimedEvent {
    /// When the event fires, seconds after the video starts.
    pub at_s: f64,
    /// Which path it applies to (0-based).
    pub path: usize,
    /// What happens.
    pub event: Event,
}

/// A named, serializable timeline of network events.
///
/// The default scenario is empty (no name, no events) and compiles to a
/// no-op on both backends.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Scenario {
    /// Scenario name (no whitespace; part of the stable hash).
    pub name: String,
    /// The timeline, in script order. Events need not be sorted; both
    /// backends order them by `(at_s, script position)`.
    pub events: Vec<TimedEvent>,
}

impl Scenario {
    /// An empty scenario with a name.
    pub fn named(name: impl Into<String>) -> Self {
        let name = name.into();
        assert!(
            !name.is_empty() && !name.chars().any(char::is_whitespace),
            "scenario name must be non-empty and whitespace-free: {name:?}"
        );
        Self {
            name,
            events: Vec::new(),
        }
    }

    /// Append an event (builder style).
    pub fn at(mut self, at_s: f64, path: usize, event: Event) -> Self {
        assert!(at_s >= 0.0 && at_s.is_finite(), "event time {at_s} invalid");
        self.events.push(TimedEvent { at_s, path, event });
        self
    }

    /// True when the timeline is empty (the scenario is a no-op).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Check the script against a topology with `n_paths` paths; returns a
    /// description of the first invalid entry.
    pub fn validate(&self, n_paths: usize) -> Result<(), String> {
        for (i, e) in self.events.iter().enumerate() {
            let fail = |msg: String| Err(format!("event {i} (at {}s): {msg}", e.at_s));
            if e.path >= n_paths {
                return fail(format!("path {} out of range (< {n_paths})", e.path));
            }
            match e.event {
                Event::RateStep { factor } | Event::RateRamp { factor, .. } if factor <= 0.0 => {
                    return fail(format!("rate factor {factor} must be > 0"));
                }
                Event::RateRamp { over_s, steps, .. } if over_s <= 0.0 || steps == 0 => {
                    return fail(format!(
                        "ramp needs over_s > 0 and steps > 0, got {over_s}/{steps}"
                    ));
                }
                Event::DelayStep { factor } if factor < 0.0 => {
                    return fail(format!("delay factor {factor} must be ≥ 0"));
                }
                Event::LossEpisode { loss, duration_s } => {
                    if !(0.0..1.0).contains(&loss) {
                        return fail(format!("loss {loss} must be in [0,1)"));
                    }
                    if duration_s <= 0.0 {
                        return fail(format!("loss episode duration {duration_s} must be > 0"));
                    }
                }
                Event::FlashCrowd {
                    n_flows,
                    duration_s,
                } if n_flows == 0 || duration_s <= 0.0 => {
                    return fail(format!(
                        "flash crowd needs n_flows > 0 and duration > 0, got {n_flows}/{duration_s}"
                    ));
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Total flash-crowd flows the script ever starts on `path`. Each
    /// [`Event::FlashCrowd`] gets its own disjoint set of pre-provisioned
    /// flows, so overlapping crowds compose; this is how many the topology
    /// must provision.
    pub fn flash_flows_for(&self, path: usize) -> usize {
        self.events
            .iter()
            .filter(|e| e.path == path)
            .map(|e| match e.event {
                Event::FlashCrowd { n_flows, .. } => n_flows as usize,
                _ => 0,
            })
            .sum()
    }

    /// Canonical text form: one header line, then one line per event in
    /// script order. `f64` fields use Rust's `{:?}`, which round-trips
    /// exactly, so [`Scenario::parse`] reproduces the scenario bit-for-bit.
    pub fn canonical(&self) -> String {
        let mut out = format!(
            "scenario {}\n",
            if self.name.is_empty() {
                "-"
            } else {
                &self.name
            }
        );
        for e in &self.events {
            out.push_str(&format!("{:?} {} {}\n", e.at_s, e.path, e.event));
        }
        out
    }

    /// Parse the canonical text form back into a scenario.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut lines = text
            .lines()
            .enumerate()
            .filter(|(_, l)| !l.trim().is_empty());
        let (_, header) = lines.next().ok_or("empty scenario text")?;
        let name = header
            .strip_prefix("scenario ")
            .ok_or_else(|| format!("bad header: {header:?}"))?
            .trim();
        let mut s = Scenario {
            name: if name == "-" {
                String::new()
            } else {
                name.to_string()
            },
            events: Vec::new(),
        };
        for (ln, line) in lines {
            let toks: Vec<&str> = line.split_whitespace().collect();
            let err = |msg: &str| format!("line {}: {msg}: {line:?}", ln + 1);
            if toks.len() < 3 {
                return Err(err("too few tokens"));
            }
            let at_s: f64 = toks[0].parse().map_err(|_| err("bad time"))?;
            let path: usize = toks[1].parse().map_err(|_| err("bad path"))?;
            let f = |i: usize| -> Result<f64, String> {
                toks.get(i)
                    .ok_or_else(|| err("missing field"))?
                    .parse()
                    .map_err(|_| err("bad number"))
            };
            let event = match toks[2] {
                "down" => Event::PathDown,
                "up" => Event::PathUp,
                "rate" => Event::RateStep { factor: f(3)? },
                "ramp" => Event::RateRamp {
                    factor: f(3)?,
                    over_s: f(4)?,
                    steps: f(5)? as u32,
                },
                "delay" => Event::DelayStep { factor: f(3)? },
                "loss" => Event::LossEpisode {
                    loss: f(3)?,
                    duration_s: f(4)?,
                },
                "flash" => Event::FlashCrowd {
                    n_flows: f(3)? as u32,
                    duration_s: f(4)?,
                },
                other => return Err(err(&format!("unknown event {other:?}"))),
            };
            s.events.push(TimedEvent { at_s, path, event });
        }
        Ok(s)
    }

    /// Stable 64-bit hash of the canonical form (FNV-1a). Embedded in
    /// experiment cache keys so two runs with different scripts can never be
    /// served each other's cached results.
    pub fn stable_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.canonical().bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::PathDown => write!(f, "down"),
            Event::PathUp => write!(f, "up"),
            Event::RateStep { factor } => write!(f, "rate {factor:?}"),
            Event::RateRamp {
                factor,
                over_s,
                steps,
            } => {
                write!(f, "ramp {factor:?} {over_s:?} {steps}")
            }
            Event::DelayStep { factor } => write!(f, "delay {factor:?}"),
            Event::LossEpisode { loss, duration_s } => write!(f, "loss {loss:?} {duration_s:?}"),
            Event::FlashCrowd {
                n_flows,
                duration_s,
            } => {
                write!(f, "flash {n_flows} {duration_s:?}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Scenario {
        Scenario::named("kitchen-sink")
            .at(10.0, 0, Event::PathDown)
            .at(25.5, 0, Event::PathUp)
            .at(30.0, 1, Event::RateStep { factor: 0.5 })
            .at(
                40.0,
                1,
                Event::RateRamp {
                    factor: 1.0,
                    over_s: 12.0,
                    steps: 6,
                },
            )
            .at(55.0, 0, Event::DelayStep { factor: 3.0 })
            .at(
                60.0,
                1,
                Event::LossEpisode {
                    loss: 0.03,
                    duration_s: 20.0,
                },
            )
            .at(
                90.0,
                0,
                Event::FlashCrowd {
                    n_flows: 8,
                    duration_s: 45.0,
                },
            )
    }

    #[test]
    fn canonical_round_trips() {
        let s = sample();
        assert_eq!(Scenario::parse(&s.canonical()).unwrap(), s);
        // Including awkward floats.
        let s = Scenario::named("f").at(0.1 + 0.2, 3, Event::RateStep { factor: 1.0 / 3.0 });
        assert_eq!(Scenario::parse(&s.canonical()).unwrap(), s);
        // And the empty/default scenario.
        let d = Scenario::default();
        assert_eq!(Scenario::parse(&d.canonical()).unwrap(), d);
    }

    #[test]
    fn hash_is_stable_and_discriminating() {
        assert_eq!(sample().stable_hash(), sample().stable_hash());
        let mut other = sample();
        other.events[0].at_s = 10.000001;
        assert_ne!(sample().stable_hash(), other.stable_hash());
        assert_ne!(
            Scenario::named("a").stable_hash(),
            Scenario::named("b").stable_hash()
        );
    }

    #[test]
    fn validate_catches_bad_scripts() {
        assert!(sample().validate(2).is_ok());
        assert!(sample().validate(1).is_err(), "path 1 out of range");
        let bad = Scenario::named("x").at(1.0, 0, Event::RateStep { factor: 0.0 });
        assert!(bad.validate(2).is_err());
        let bad = Scenario::named("x").at(
            1.0,
            0,
            Event::LossEpisode {
                loss: 1.0,
                duration_s: 5.0,
            },
        );
        assert!(bad.validate(2).is_err());
        let bad = Scenario::named("x").at(
            1.0,
            0,
            Event::FlashCrowd {
                n_flows: 0,
                duration_s: 5.0,
            },
        );
        assert!(bad.validate(2).is_err());
    }

    #[test]
    fn flash_flow_provisioning_sums_per_path() {
        let s = Scenario::named("x")
            .at(
                5.0,
                0,
                Event::FlashCrowd {
                    n_flows: 3,
                    duration_s: 10.0,
                },
            )
            .at(
                8.0,
                0,
                Event::FlashCrowd {
                    n_flows: 2,
                    duration_s: 10.0,
                },
            )
            .at(
                5.0,
                1,
                Event::FlashCrowd {
                    n_flows: 7,
                    duration_s: 10.0,
                },
            );
        assert_eq!(s.flash_flows_for(0), 5);
        assert_eq!(s.flash_flows_for(1), 7);
        assert_eq!(s.flash_flows_for(2), 0);
    }
}
