//! `scenario` — a deterministic fault-injection and path-dynamics engine.
//!
//! The paper's central claim — that DMP-streaming needs no bandwidth probing
//! because TCP backpressure *implicitly* reallocates the stream — only shows
//! its teeth when path conditions change: cross-traffic surges, degradation,
//! outright failure. This crate scripts those changes as a serializable,
//! seeded **timeline DSL** ([`Scenario`]) and compiles the same script onto
//! both experiment backends:
//!
//! * **netsim** ([`netsim_driver`]): a [`netsim_driver::ScenarioDriver`] app
//!   schedules every scripted action as an ordinary engine event (an app
//!   timer) and applies it through the simulator's link-mutation API, so both
//!   scheduler implementations (`EngineKind::Heap` / `Calendar`) replay the
//!   scenario byte-identically;
//! * **dmp-live** ([`live`]): the timeline compiles to a piecewise-constant
//!   rate/delay/down schedule per path ([`live::PathSchedule`]) that replaces
//!   the path emulator's random rate resampler.
//!
//! Scenario event times are **seconds relative to the start of the video**
//! (both backends offset them past any warm-up themselves).
//!
//! # Example
//!
//! ```
//! use scenario::{Event, Scenario};
//!
//! let s = Scenario::named("failover")
//!     .at(60.0, 0, Event::PathDown)
//!     .at(120.0, 1, Event::RateStep { factor: 0.5 });
//! let text = s.canonical();
//! assert_eq!(Scenario::parse(&text).unwrap(), s);
//! assert_ne!(s.stable_hash(), Scenario::default().stable_hash());
//! ```

#![warn(missing_docs)]

pub mod fleet;
pub mod live;
pub mod netsim_driver;
pub mod timeline;

pub use fleet::{FleetTimeline, RateSpike};
pub use live::{compile_live, LiveStep, PathSchedule};
pub use netsim_driver::{PathBinding, ScenarioDriver};
pub use timeline::{Event, Scenario, TimedEvent};
