//! Wire format for live streaming: fixed-size framed video packets.
//!
//! Every frame is exactly `packet_bytes` long (the paper uses 1448-byte
//! packets on the Internet): a 24-byte header — magic, stream sequence
//! number, server generation timestamp — followed by padding that stands in
//! for media payload. Fixed-size frames keep the "packets per second"
//! accounting of the paper exact over a byte-stream transport.

use bytes::{Buf, BufMut, BytesMut};

/// Frame magic (sanity check against desynchronised streams).
pub const MAGIC: u32 = 0xD3_57_2E_A1;

/// Header bytes preceding the padding payload.
pub const HEADER_BYTES: usize = 24;

/// One framed video packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Frame {
    /// Stream sequence number (playback position).
    pub seq: u64,
    /// Generation time at the server, nanoseconds since the stream epoch.
    pub gen_ns: u64,
}

/// Encode `frame` as exactly `packet_bytes` bytes into `dst`.
///
/// # Panics
/// Panics if `packet_bytes < HEADER_BYTES`.
pub fn encode(frame: &Frame, packet_bytes: usize, dst: &mut BytesMut) {
    assert!(packet_bytes >= HEADER_BYTES, "packet too small for header");
    dst.reserve(packet_bytes);
    dst.put_u32(MAGIC);
    dst.put_u32(packet_bytes as u32);
    dst.put_u64(frame.seq);
    dst.put_u64(frame.gen_ns);
    dst.put_bytes(0, packet_bytes - HEADER_BYTES);
}

/// Error from [`decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer does not yet hold a complete frame; read more bytes.
    Incomplete,
    /// The stream is corrupt (bad magic or inconsistent length).
    Corrupt,
}

/// Try to decode one frame from the front of `src`, consuming it on success.
pub fn decode(src: &mut BytesMut) -> Result<Frame, DecodeError> {
    if src.len() < HEADER_BYTES {
        return Err(DecodeError::Incomplete);
    }
    let magic = u32::from_be_bytes(src[0..4].try_into().expect("len checked"));
    if magic != MAGIC {
        return Err(DecodeError::Corrupt);
    }
    let len = u32::from_be_bytes(src[4..8].try_into().expect("len checked")) as usize;
    if len < HEADER_BYTES {
        return Err(DecodeError::Corrupt);
    }
    if src.len() < len {
        return Err(DecodeError::Incomplete);
    }
    src.advance(8);
    let seq = src.get_u64();
    let gen_ns = src.get_u64();
    src.advance(len - HEADER_BYTES);
    Ok(Frame { seq, gen_ns })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut buf = BytesMut::new();
        let f = Frame {
            seq: 42,
            gen_ns: 123_456_789,
        };
        encode(&f, 1448, &mut buf);
        assert_eq!(buf.len(), 1448);
        let got = decode(&mut buf).unwrap();
        assert_eq!(got, f);
        assert!(buf.is_empty());
    }

    #[test]
    fn partial_frame_is_incomplete() {
        let mut buf = BytesMut::new();
        encode(&Frame { seq: 1, gen_ns: 2 }, 100, &mut buf);
        let mut partial = buf.split_to(50);
        assert_eq!(decode(&mut partial), Err(DecodeError::Incomplete));
    }

    #[test]
    fn several_frames_in_one_buffer() {
        let mut buf = BytesMut::new();
        for seq in 0..5u64 {
            encode(
                &Frame {
                    seq,
                    gen_ns: seq * 10,
                },
                64,
                &mut buf,
            );
        }
        for seq in 0..5u64 {
            assert_eq!(decode(&mut buf).unwrap().seq, seq);
        }
        assert_eq!(decode(&mut buf), Err(DecodeError::Incomplete));
    }

    #[test]
    fn bad_magic_is_corrupt() {
        let mut buf = BytesMut::new();
        buf.put_u32(0xdeadbeef);
        buf.put_bytes(0, 60);
        assert_eq!(decode(&mut buf), Err(DecodeError::Corrupt));
    }

    #[test]
    #[should_panic(expected = "packet too small")]
    fn tiny_packets_rejected() {
        let mut buf = BytesMut::new();
        encode(&Frame { seq: 0, gen_ns: 0 }, 8, &mut buf);
    }

    /// Frames decode identically however the byte stream is split into
    /// reads (the client feeds arbitrary chunks into the decoder).
    /// Randomized over seeded cases for reproducibility.
    #[test]
    fn decoding_is_split_invariant() {
        use rand::rngs::SmallRng;
        use rand::{RngCore, SeedableRng};
        for case in 0..128u64 {
            let mut rng = SmallRng::seed_from_u64(0x5eed_713e ^ case);
            let n_frames = 1 + (rng.next_u64() as usize) % 19;
            let frames: Vec<(u64, u64)> = (0..n_frames)
                .map(|_| (rng.next_u64(), rng.next_u64()))
                .collect();
            let pkt_len = 24 + (rng.next_u64() as usize) % 232;
            let n_cuts = 1 + (rng.next_u64() as usize) % 39;
            let cuts: Vec<usize> = (0..n_cuts)
                .map(|_| 1 + (rng.next_u64() as usize) % 63)
                .collect();

            let mut stream = BytesMut::new();
            for &(seq, gen_ns) in &frames {
                encode(&Frame { seq, gen_ns }, pkt_len, &mut stream);
            }
            let bytes = stream.freeze();
            // Feed in arbitrary-sized chunks.
            let mut buf = BytesMut::new();
            let mut decoded = Vec::new();
            let mut pos = 0usize;
            let mut cut_iter = cuts.iter().cycle();
            while pos < bytes.len() {
                let step = (*cut_iter.next().unwrap()).min(bytes.len() - pos);
                buf.extend_from_slice(&bytes[pos..pos + step]);
                pos += step;
                loop {
                    match decode(&mut buf) {
                        Ok(f) => decoded.push((f.seq, f.gen_ns)),
                        Err(DecodeError::Incomplete) => break,
                        Err(DecodeError::Corrupt) => panic!("corrupt at case {case}"),
                    }
                }
            }
            assert_eq!(decoded, frames, "case {case}");
            assert!(buf.is_empty(), "case {case}");
        }
    }
}
