//! `dmp-live` — DMP-streaming over **real TCP sockets** with tokio,
//! reproducing the paper's Section 6 Internet experiments in-process.
//!
//! The paper implemented the scheme on Linux and streamed from a university
//! server to PlanetLab/ADSL hosts. Without multihomed Internet hosts (or
//! root for netem), this crate substitutes an in-process [`emulator`]: a
//! shaping proxy per path with configurable rate (optionally time-varying),
//! propagation delay, and a bounded queue. Everything the scheme itself
//! touches is real: kernel sockets, kernel send buffers, backpressure-driven
//! pull scheduling, cross-path reassembly.
//!
//! * [`wire`] — fixed-size packet framing (1448-byte frames as in the paper);
//! * [`emulator`] — the bandwidth/delay path emulator;
//! * [`stream`] — server (shared queue + per-path sender tasks) and client
//!   (per-path readers recording a delivery trace);
//! * [`experiment`] — the Fig. 7 validation harness: run, measure late
//!   fractions, estimate effective path parameters, compare to the model;
//! * [`telemetry`] — a process-wide registry of the shaping timelines each
//!   emulated path actually applied, drained into artifact sidecars.

#![warn(missing_docs)]

pub mod emulator;
pub mod experiment;
pub mod stream;
pub mod telemetry;
pub mod wire;

pub use emulator::{AppliedPoint, PathEmulator, PathProfile};
pub use experiment::{model_prediction, run_experiment, LiveExperiment, LiveRun};
pub use stream::{run_stream, LiveConfig, LiveOutput};
