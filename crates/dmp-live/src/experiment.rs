//! The Section 6 experiment, rebuilt in-process: stream a live video over
//! two emulated paths with real TCP sockets, measure the fraction of late
//! packets, and compare against the analytical model with path parameters
//! estimated from the run — the paper's Fig. 7 methodology with the
//! PlanetLab hosts replaced by the path emulator.
//!
//! Parameter estimation substitution (documented in DESIGN.md): the paper
//! read `p`, `R`, `T_O` off tcpdump traces. Loss cannot be observed on an
//! emulated path (congestion appears as throughput variation instead), so we
//! estimate an **effective** loss rate by inverting the PFTK formula at the
//! path's achievable throughput and RTT. The model then sees a TCP flow with
//! the same achievable throughput as the emulated path.

use std::time::Duration;

use dmp_core::metrics::LatenessReport;
use dmp_core::spec::{PathSpec, VideoSpec};
use tokio::net::TcpListener;

use crate::emulator::{PathEmulator, PathProfile};
use crate::stream::{run_stream, LiveConfig, LiveOutput};

/// Default timeout ratio assumed when inverting PFTK (mid-range of the
/// paper's measured 1.6–3.3).
pub const ASSUMED_TO_RATIO: f64 = 2.0;

/// One live validation experiment.
#[derive(Debug, Clone)]
pub struct LiveExperiment {
    /// The video to stream.
    pub video: VideoSpec,
    /// Number of packets to generate (duration = packets / µ).
    pub packets: u64,
    /// Emulated path profiles (one TCP connection each).
    pub paths: Vec<PathProfile>,
    /// Kernel send-buffer bytes per sender socket.
    pub send_buf_bytes: u32,
    /// Seed for the emulators' rate processes.
    pub seed: u64,
    /// Time-dilation factor `F ≥ 1`: the experiment is *executed* `F`× faster
    /// than its nominal timeline (path rates and the video rate ×F, delays
    /// and resample intervals ÷F) and every recorded timestamp is scaled back
    /// by `F`, so the trace and all derived metrics stay in nominal time.
    /// Byte-denominated state (shaper queue, kernel socket buffers) is
    /// untouched, which preserves the backpressure dynamics the scheme
    /// relies on. `1.0` = real time. Keep the dilated event spacing (nominal
    /// spacing ÷ F) well above tokio's ~1 ms timer granularity.
    pub time_dilation: f64,
    /// Scripted per-path shaping schedules (from
    /// [`scenario::compile_live`]), replacing the emulators' random rate
    /// resamplers. `None` = the profiles' own random processes. Step times
    /// are nominal; dilation is applied internally.
    pub schedules: Option<Vec<scenario::PathSchedule>>,
    /// When set, record an [`obs`] flight-recorder trace under this label:
    /// the same JSONL schema the simulator emits, timestamped in *nominal*
    /// nanoseconds (dilated runs are rescaled), written to
    /// [`obs::default_trace_dir`] and registered for the harness sidecars.
    pub trace_label: Option<String>,
}

impl LiveExperiment {
    /// Estimated achievable TCP throughput per path, packets per second
    /// (the shaper rate divided by the packet size).
    pub fn path_throughput_pps(&self, k: usize) -> f64 {
        self.paths[k].rate_bps / (f64::from(self.video.packet_bytes) * 8.0)
    }

    /// Effective [`PathSpec`] for the model: RTT from the configured delay
    /// plus half-full shaper queue, loss from PFTK inversion at the path's
    /// achievable throughput.
    pub fn effective_path_spec(&self, k: usize) -> PathSpec {
        let p = &self.paths[k];
        let queueing_s = (p.queue_bytes as f64 / 2.0) * 8.0 / p.rate_bps;
        let rtt_s = 2.0 * p.delay.as_secs_f64() + queueing_s;
        let sigma = self.path_throughput_pps(k);
        let loss = tcp_model::pftk::loss_for_throughput(sigma, rtt_s, ASSUMED_TO_RATIO);
        PathSpec {
            loss,
            rtt_s,
            to_ratio: ASSUMED_TO_RATIO,
        }
    }

    /// Aggregate achievable throughput over the video bitrate, `σ_a/µ`.
    pub fn aggregate_ratio(&self) -> f64 {
        let sigma: f64 = (0..self.paths.len())
            .map(|k| self.path_throughput_pps(k))
            .sum();
        sigma / self.video.rate_pps
    }
}

/// Result of a live experiment run.
#[derive(Debug)]
pub struct LiveRun {
    /// Raw streaming output (trace, per-path counts).
    pub output: LiveOutput,
    /// Measured lateness at the requested startup delays.
    pub report: LatenessReport,
    /// Model-facing path estimates.
    pub est_paths: Vec<PathSpec>,
}

/// Scale a nominal path profile to run `f`× faster than real time.
fn dilate_profile(p: &PathProfile, f: f64) -> PathProfile {
    PathProfile {
        rate_bps: p.rate_bps * f,
        variability: p.variability,
        resample_every: p.resample_every.div_f64(f),
        delay: p.delay.div_f64(f),
        queue_bytes: p.queue_bytes,
    }
}

/// Map a trace recorded on the dilated (`f`× fast) clock back to nominal
/// time: every timestamp and the observation window stretch by `f`.
fn undilate_trace(
    trace: &dmp_core::trace::StreamTrace,
    video: VideoSpec,
    f: f64,
) -> dmp_core::trace::StreamTrace {
    let mut t =
        dmp_core::trace::StreamTrace::new(video, (trace.end_ns() as f64 * f).round() as u64);
    for r in trace.records() {
        t.on_generated(r.seq, (r.gen_ns as f64 * f).round() as u64);
        if let Some(a) = r.arrival_ns {
            t.on_arrival(r.seq, (a as f64 * f).round() as u64, r.path);
        }
    }
    t
}

/// Execute the experiment and evaluate lateness at each τ in `taus_s`.
pub async fn run_experiment(exp: &LiveExperiment, taus_s: &[f64]) -> std::io::Result<LiveRun> {
    let f = exp.time_dilation;
    assert!(f >= 1.0, "time_dilation must be ≥ 1 (got {f})");
    let mut listeners = Vec::new();
    let mut client_addrs = Vec::new();
    for _ in &exp.paths {
        let l = TcpListener::bind("127.0.0.1:0").await?;
        client_addrs.push(l.local_addr()?);
        listeners.push(l);
    }
    if let Some(schedules) = &exp.schedules {
        assert_eq!(
            schedules.len(),
            exp.paths.len(),
            "one schedule per path required"
        );
    }
    let mut emus = Vec::new();
    for (k, profile) in exp.paths.iter().enumerate() {
        let dilated = dilate_profile(profile, f);
        // Dilate scripted step times; factors are relative, so they carry
        // over unchanged.
        let schedule = exp.schedules.as_ref().map(|s| scenario::PathSchedule {
            steps: s[k]
                .steps
                .iter()
                .map(|st| scenario::LiveStep {
                    at: st.at.div_f64(f),
                    ..*st
                })
                .collect(),
        });
        emus.push(
            PathEmulator::spawn_scripted(dilated, client_addrs[k], exp.seed ^ k as u64, schedule)
                .await?,
        );
    }
    let addrs: Vec<_> = emus.iter().map(|e| e.addr()).collect();
    let cfg = LiveConfig {
        video: VideoSpec {
            rate_pps: exp.video.rate_pps * f,
            packet_bytes: exp.video.packet_bytes,
        },
        packets: exp.packets,
        send_buf_bytes: exp.send_buf_bytes,
        trace: exp.trace_label.is_some(),
    };
    let max_tau = taus_s.iter().cloned().fold(1.0, f64::max);
    let grace = Duration::from_secs_f64((max_tau.min(15.0) + 2.0) / f);
    let mut output = run_stream(cfg, &addrs, listeners, grace).await?;
    if f != 1.0 {
        output.trace = undilate_trace(&output.trace, exp.video, f);
        output.elapsed = output.elapsed.mul_f64(f);
    }
    // Surface what each emulated path actually applied (rate/delay/down
    // timeline) for the artifact sidecars, rescaled to nominal time.
    for (k, emu) in emus.iter().enumerate() {
        let timeline: Vec<_> = emu
            .timeline()
            .into_iter()
            .map(|p| crate::emulator::AppliedPoint {
                t: p.t.mul_f64(f),
                rate_bps: p.rate_bps / f,
                delay: p.delay.mul_f64(f),
                down: p.down,
            })
            .collect();
        crate::telemetry::record_timeline(format!("seed{}-path{k}", exp.seed), timeline);
    }
    if let Some(label) = &exp.trace_label {
        // Rescale event timestamps to nominal time, prepend the path↔conn
        // header (live "connections" are the path socket indices), and sort:
        // tasks interleave, so collection order is not time order.
        let mut events: Vec<obs::TraceEvent> = (0..exp.paths.len())
            .map(|k| obs::TraceEvent {
                t: 0,
                kind: obs::EventKind::PathConn {
                    path: k as u32,
                    conn: k as u32,
                },
            })
            .collect();
        events.extend(output.trace_events.drain(..).map(|mut e| {
            if f != 1.0 {
                e.t = (e.t as f64 * f).round() as u64;
            }
            e
        }));
        events.sort_by_key(|e| e.t);
        let path = obs::default_trace_dir().join(format!("{}.jsonl", obs::sanitize_label(label)));
        let mut rec = obs::Recorder::to_file(obs::TraceConfig::default(), &path)?;
        for e in &events {
            rec.emit(e.t, e.kind.clone());
        }
        let written = rec.finish()?;
        obs::record_trace_file(label.clone(), path, written.events);
        output.trace_events = events;
    }
    let report = LatenessReport::from_trace(&output.trace, taus_s);
    let est_paths = (0..exp.paths.len())
        .map(|k| exp.effective_path_spec(k))
        .collect();
    Ok(LiveRun {
        output,
        report,
        est_paths,
    })
}

/// Model prediction of the late fraction for this experiment at startup
/// delay `tau_s` (used for the Fig. 7(b) scatter).
pub fn model_prediction(exp: &LiveExperiment, tau_s: f64, consumptions: u64) -> f64 {
    let paths: Vec<PathSpec> = (0..exp.paths.len())
        .map(|k| exp.effective_path_spec(k))
        .collect();
    let model = tcp_model::DmpModel::new(paths, exp.video.rate_pps, tau_s);
    model.late_fraction(consumptions, exp.seed).f
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_path_exp(rate0: f64, rate1: f64, mu: f64, packets: u64) -> LiveExperiment {
        LiveExperiment {
            video: VideoSpec {
                rate_pps: mu,
                packet_bytes: 1448,
            },
            packets,
            paths: vec![
                PathProfile::steady(rate0, Duration::from_millis(20)),
                PathProfile::steady(rate1, Duration::from_millis(20)),
            ],
            send_buf_bytes: 16 * 1024,
            seed: 3,
            time_dilation: 1.0,
            schedules: None,
            trace_label: None,
        }
    }

    #[test]
    fn effective_spec_is_plausible() {
        let exp = two_path_exp(600_000.0, 600_000.0, 50.0, 100);
        let spec = exp.effective_path_spec(0);
        assert!(spec.loss > 1e-4 && spec.loss < 0.3, "p = {}", spec.loss);
        assert!(spec.rtt_s > 0.04 && spec.rtt_s < 1.0, "R = {}", spec.rtt_s);
        // σa/µ = 2 × 600k / (50 pkt/s × 1448 B × 8) ≈ 2.07.
        assert!((exp.aggregate_ratio() - 2.07).abs() < 0.05);
    }

    #[test]
    fn ample_live_run_has_no_late_packets_at_modest_tau() {
        tokio::runtime::Runtime::new().unwrap().block_on(async {
            // 2× headroom, ~4 s of video.
            let exp = two_path_exp(1_200_000.0, 1_200_000.0, 100.0, 400);
            let run = run_experiment(&exp, &[0.5, 2.0]).await.unwrap();
            assert!(run.output.trace.delivered() >= 399);
            let f2 = run.report.per_tau[1].playback_order;
            assert_eq!(f2, 0.0, "2 s of buffer with 2× headroom must be clean");
        })
    }

    #[test]
    fn starved_live_run_is_late() {
        tokio::runtime::Runtime::new().unwrap().block_on(async {
            // Aggregate ≈ 0.7× bitrate: lateness is unavoidable. The run must be
            // long enough that the lateness backlog reaches the *stable* region
            // of the trace: `stable_records` discards packets generated within
            // τ+5 s of the window end, and starvation needs a couple of seconds
            // before delivery falls ~1 s behind generation. 8 s of video leaves
            // a 5 s stable prefix whose tail is deeply late.
            let exp = two_path_exp(300_000.0, 300_000.0, 75.0, 600);
            let run = run_experiment(&exp, &[1.0]).await.unwrap();
            let f = run.report.per_tau[0].playback_order;
            assert!(f > 0.1, "f = {f}");
        })
    }

    #[test]
    fn dilated_run_matches_real_time_semantics() {
        tokio::runtime::Runtime::new().unwrap().block_on(async {
            // Same ample-headroom experiment as above, executed 8× faster.
            // The nominal-time trace must still show a complete, punctual
            // delivery: everything arrives, nothing is late at τ = 2 s, and
            // the rescaled generation span matches the nominal schedule.
            let mut exp = two_path_exp(1_200_000.0, 1_200_000.0, 100.0, 400);
            exp.time_dilation = 8.0;
            let run = run_experiment(&exp, &[2.0]).await.unwrap();
            assert!(run.output.trace.delivered() >= 399);
            assert_eq!(run.report.per_tau[0].playback_order, 0.0);
            let records = run.output.trace.records();
            let span_s = (records.last().unwrap().gen_ns - records[0].gen_ns) as f64 / 1e9;
            let nominal_s = (exp.packets - 1) as f64 * exp.video.gen_interval_s();
            assert!(
                (span_s - nominal_s).abs() < 0.1 * nominal_s,
                "generation span {span_s:.2}s vs nominal {nominal_s:.2}s"
            );
        })
    }

    #[test]
    fn traced_live_run_writes_nominal_time_jsonl_and_registers_it() {
        tokio::runtime::Runtime::new().unwrap().block_on(async {
            // The live layer writes to obs::default_trace_dir(); point it at
            // a temp dir (no other test in this binary reads the variable).
            let dir = std::env::temp_dir().join(format!("dmp-live-trace-{}", std::process::id()));
            std::env::set_var("DMP_TRACE_DIR", &dir);
            let mut exp = two_path_exp(1_200_000.0, 1_200_000.0, 100.0, 200);
            exp.time_dilation = 4.0; // exercise the nominal-time rescale
            exp.trace_label = Some("live:test:seed3".into());
            let run = run_experiment(&exp, &[2.0]).await.unwrap();
            std::env::remove_var("DMP_TRACE_DIR");

            let files = obs::drain_trace_files();
            let f = files
                .iter()
                .find(|f| f.label == "live:test:seed3")
                .expect("trace file registered");
            let text = std::fs::read_to_string(&f.path).unwrap();
            let trace = obs::Trace::parse(&text).unwrap();
            assert_eq!(f.events, text.lines().count() as u64);
            // Nominal-time check: 200 packets at a nominal 100 pkt/s span
            // ~2 s; on the 4×-dilated execution clock they'd span ~0.5 s.
            let span = trace.duration_s();
            assert!(
                span > 1.5 && span < 8.0,
                "trace span {span} s is not on the nominal clock"
            );
            // The schema mirrors the simulator: header + scheduler + client.
            assert_eq!(trace.path_conn_map(), vec![(0, 0), (1, 1)]);
            assert!(text.contains("\"ev\":\"pull\""));
            assert!(text.contains("\"ev\":\"gen\""));
            assert!(text.contains("\"ev\":\"dlv\""));
            // Events came from concurrent tasks but the file is time-sorted.
            let ts: Vec<u64> = trace.events.iter().map(|e| e.t).collect();
            assert!(
                ts.windows(2).all(|w| w[0] <= w[1]),
                "trace must be time-sorted"
            );
            assert!(run.output.trace.delivered() >= 199);
            std::fs::remove_dir_all(&dir).ok();
        })
    }

    #[test]
    fn model_prediction_orders_with_headroom() {
        let tight = two_path_exp(450_000.0, 450_000.0, 50.0, 100);
        let roomy = two_path_exp(700_000.0, 700_000.0, 50.0, 100);
        let f_tight = model_prediction(&tight, 6.0, 150_000);
        let f_roomy = model_prediction(&roomy, 6.0, 150_000);
        assert!(f_roomy < f_tight, "{f_roomy} !< {f_tight}");
    }
}
