//! The live DMP-streaming endpoints over real TCP sockets.
//!
//! The server generates CBR packets into a shared asynchronous queue; one
//! sender task per path pulls from the head and `write_all`s into its socket.
//! A sender blocked on a full kernel send buffer simply stops pulling — the
//! other paths keep draining the queue. That is the paper's scheme verbatim,
//! with the socket buffer playing the role it plays in Fig. 2.
//!
//! The client runs one reader per path, decodes fixed-size frames, and
//! records arrival times into a shared [`StreamTrace`].

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

use dmp_core::spec::VideoSpec;
use dmp_core::trace::StreamTrace;
use obs::{EventKind, TraceEvent};
use parking_lot::Mutex;
use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::{TcpListener, TcpSocket, TcpStream};
use tokio::sync::Notify;
use tokio::time::Instant;

use crate::wire::{self, Frame};

/// Shared server queue (the paper's "server queue" with its lock).
#[derive(Default)]
struct LiveQueue {
    q: Mutex<VecDeque<Frame>>,
    notify: Notify,
    /// Set once generation is finished (senders drain and exit).
    done: std::sync::atomic::AtomicBool,
}

impl LiveQueue {
    /// Push a frame; returns the queue depth after the push.
    fn push(&self, f: Frame) -> usize {
        let mut q = self.q.lock();
        q.push_back(f);
        let depth = q.len();
        drop(q);
        self.notify.notify_waiters();
        depth
    }

    /// Pop the head frame together with the depth left behind it.
    fn pop(&self) -> Option<(Frame, usize)> {
        let mut q = self.q.lock();
        q.pop_front().map(|f| (f, q.len()))
    }

    fn finish(&self) {
        self.done.store(true, std::sync::atomic::Ordering::SeqCst);
        self.notify.notify_waiters();
    }

    fn is_done(&self) -> bool {
        self.done.load(std::sync::atomic::Ordering::SeqCst)
    }
}

/// Configuration of a live streaming run.
#[derive(Debug, Clone, Copy)]
pub struct LiveConfig {
    /// The video to stream.
    pub video: VideoSpec,
    /// Number of packets to generate.
    pub packets: u64,
    /// Kernel send-buffer size per path socket, bytes. Small values make the
    /// implicit bandwidth inference sharp (the paper relies on the sender
    /// blocking when the buffer fills).
    pub send_buf_bytes: u32,
    /// Collect an [`obs`] event trace (generation, pull decisions, server
    /// queue depth, deliveries) in [`LiveOutput::trace_events`]. Timestamps
    /// are on the run's execution clock; time-dilated experiments rescale
    /// them to nominal time afterwards.
    pub trace: bool,
}

/// Outcome of a live run.
#[derive(Debug)]
pub struct LiveOutput {
    /// The delivery trace (generation + arrival per packet).
    pub trace: StreamTrace,
    /// Packets received per path.
    pub per_path_packets: Vec<u64>,
    /// Duration of the run on the trace's clock: wall-clock as produced by
    /// [`run_stream`], rescaled to the nominal timeline by time-dilated
    /// experiments (see `LiveExperiment::time_dilation`).
    pub elapsed: Duration,
    /// Collected [`obs`] events (empty unless [`LiveConfig::trace`] was set).
    /// Unsorted — producers on different tasks interleave; sort by timestamp
    /// before writing.
    pub trace_events: Vec<TraceEvent>,
}

/// Stream a video from an in-process server to an in-process client over the
/// given path endpoints. `path_addrs[k]` is where the server connects for
/// path `k` (typically a [`crate::emulator::PathEmulator`]); the client
/// accepts on the listeners supplied alongside.
///
/// Returns once every generated packet has been delivered or `grace` elapses
/// after generation ends.
pub async fn run_stream(
    cfg: LiveConfig,
    path_addrs: &[std::net::SocketAddr],
    listeners: Vec<TcpListener>,
    grace: Duration,
) -> std::io::Result<LiveOutput> {
    assert_eq!(path_addrs.len(), listeners.len());
    let k = path_addrs.len();
    let epoch = Instant::now();
    let horizon_ns =
        (cfg.packets as f64 * cfg.video.gen_interval_s() * 1e9) as u64 + grace.as_nanos() as u64;
    let trace = Arc::new(Mutex::new(StreamTrace::new(cfg.video, horizon_ns)));
    let queue = Arc::new(LiveQueue::default());
    // One shared event log for all tasks; unlike the simulator there is no
    // single-threaded dispatch loop to serialise emission, so events are
    // sorted by timestamp when the experiment writes them out.
    let events: Option<Arc<Mutex<Vec<TraceEvent>>>> =
        cfg.trace.then(|| Arc::new(Mutex::new(Vec::new())));

    // --- client readers (accept before the server connects) ---
    let mut reader_handles = Vec::new();
    for (path, listener) in listeners.into_iter().enumerate() {
        let trace = Arc::clone(&trace);
        let events = events.clone();
        reader_handles.push(tokio::spawn(async move {
            let (mut sock, _) = listener.accept().await?;
            sock.set_nodelay(true)?;
            let mut buf = bytes::BytesMut::with_capacity(64 * 1024);
            let mut received = 0u64;
            let mut tmp = vec![0u8; 16 * 1024];
            loop {
                match sock.read(&mut tmp).await {
                    Ok(0) | Err(_) => break,
                    Ok(n) => {
                        buf.extend_from_slice(&tmp[..n]);
                        loop {
                            match wire::decode(&mut buf) {
                                Ok(frame) => {
                                    let now = epoch.elapsed().as_nanos() as u64;
                                    trace.lock().on_arrival(frame.seq, now, path as u8);
                                    if let Some(ev) = &events {
                                        ev.lock().push(TraceEvent {
                                            t: now,
                                            kind: EventKind::Delivered {
                                                path: path as u32,
                                                seq: frame.seq,
                                            },
                                        });
                                    }
                                    received += 1;
                                }
                                Err(wire::DecodeError::Incomplete) => break,
                                Err(wire::DecodeError::Corrupt) => {
                                    return Err(std::io::Error::new(
                                        std::io::ErrorKind::InvalidData,
                                        "corrupt frame",
                                    ));
                                }
                            }
                        }
                    }
                }
            }
            Ok::<u64, std::io::Error>(received)
        }));
    }

    // --- per-path senders ---
    let mut sender_handles = Vec::new();
    for (path, &addr) in path_addrs.iter().enumerate() {
        let socket = TcpSocket::new_v4()?;
        socket.set_send_buffer_size(cfg.send_buf_bytes)?;
        let mut sock: TcpStream = socket.connect(addr).await?;
        sock.set_nodelay(true)?;
        let queue = Arc::clone(&queue);
        let events = events.clone();
        let packet_bytes = cfg.video.packet_bytes as usize;
        sender_handles.push(tokio::spawn(async move {
            let mut out = bytes::BytesMut::with_capacity(packet_bytes);
            loop {
                // Take the "lock" on the server queue: pull one packet and
                // write it; a blocked write_all keeps this sender away from
                // the queue while others pull.
                match queue.pop() {
                    Some((frame, left)) => {
                        if let Some(ev) = &events {
                            ev.lock().push(TraceEvent {
                                t: epoch.elapsed().as_nanos() as u64,
                                kind: EventKind::Pull {
                                    path: path as u32,
                                    seq: frame.seq,
                                    queued: left as u32,
                                },
                            });
                        }
                        out.clear();
                        wire::encode(&frame, packet_bytes, &mut out);
                        if sock.write_all(&out).await.is_err() {
                            break;
                        }
                    }
                    None if queue.is_done() => break,
                    None => queue.notify.notified().await,
                }
            }
            let _ = sock.shutdown().await;
            Ok::<(), std::io::Error>(())
        }));
    }

    // --- generator (CBR, paced on the tokio clock) ---
    let interval = Duration::from_secs_f64(cfg.video.gen_interval_s());
    let mut next = epoch;
    for seq in 0..cfg.packets {
        next += interval;
        tokio::time::sleep_until(next).await;
        let gen_ns = epoch.elapsed().as_nanos() as u64;
        trace.lock().on_generated(seq, gen_ns);
        let depth = queue.push(Frame { seq, gen_ns });
        if let Some(ev) = &events {
            let mut ev = ev.lock();
            ev.push(TraceEvent {
                t: gen_ns,
                kind: EventKind::Generated { seq },
            });
            ev.push(TraceEvent {
                t: gen_ns,
                kind: EventKind::SrvQueue {
                    depth: depth as u32,
                },
            });
        }
    }
    queue.finish();

    // --- wind down: give stragglers a grace period, then cut readers ---
    for h in sender_handles {
        let _ = tokio::time::timeout(grace, h).await;
    }
    let mut per_path_packets = vec![0u64; k];
    for (path, h) in reader_handles.into_iter().enumerate() {
        match tokio::time::timeout(grace, h).await {
            Ok(Ok(Ok(n))) => per_path_packets[path] = n,
            _ => {
                // Reader still blocked (tail in flight) — acceptable; its
                // arrivals so far are already in the trace.
            }
        }
    }

    let trace = trace.lock().clone();
    // Snapshot rather than unwrap the Arc: a reader still blocked on a
    // straggling tail holds its clone past the grace timeout.
    let trace_events = events
        .map(|e| std::mem::take(&mut *e.lock()))
        .unwrap_or_default();
    Ok(LiveOutput {
        trace,
        per_path_packets,
        elapsed: epoch.elapsed(),
        trace_events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emulator::{PathEmulator, PathProfile};

    async fn listeners(n: usize) -> (Vec<TcpListener>, Vec<std::net::SocketAddr>) {
        let mut ls = Vec::new();
        let mut addrs = Vec::new();
        for _ in 0..n {
            let l = TcpListener::bind("127.0.0.1:0").await.unwrap();
            addrs.push(l.local_addr().unwrap());
            ls.push(l);
        }
        (ls, addrs)
    }

    fn cfg(mu: f64, packets: u64) -> LiveConfig {
        LiveConfig {
            video: VideoSpec {
                rate_pps: mu,
                packet_bytes: 1448,
            },
            packets,
            send_buf_bytes: 16 * 1024,
            trace: false,
        }
    }

    #[test]
    fn direct_loopback_delivers_everything() {
        tokio::runtime::Runtime::new().unwrap().block_on(async {
            let (ls, addrs) = listeners(2).await;
            let out = run_stream(cfg(100.0, 200), &addrs, ls, Duration::from_secs(2))
                .await
                .unwrap();
            assert_eq!(out.trace.generated(), 200);
            assert_eq!(out.trace.delivered(), 200);
            assert_eq!(out.per_path_packets.iter().sum::<u64>(), 200);
        })
    }

    #[test]
    fn traced_loopback_mirrors_the_sim_schema() {
        tokio::runtime::Runtime::new().unwrap().block_on(async {
            let (ls, addrs) = listeners(2).await;
            let mut c = cfg(100.0, 100);
            c.trace = true;
            let out = run_stream(c, &addrs, ls, Duration::from_secs(2))
                .await
                .unwrap();
            assert_eq!(out.trace.delivered(), 100);
            let gens = out
                .trace_events
                .iter()
                .filter(|e| matches!(e.kind, EventKind::Generated { .. }))
                .count();
            let pulls = out
                .trace_events
                .iter()
                .filter(|e| matches!(e.kind, EventKind::Pull { .. }))
                .count();
            let dlvs = out
                .trace_events
                .iter()
                .filter(|e| matches!(e.kind, EventKind::Delivered { .. }))
                .count();
            assert_eq!(gens, 100);
            assert_eq!(pulls, 100, "every packet is pulled exactly once");
            assert_eq!(dlvs, 100);
            assert!(out
                .trace_events
                .iter()
                .any(|e| matches!(e.kind, EventKind::SrvQueue { .. })));
        })
    }

    #[test]
    fn untraced_loopback_collects_nothing() {
        tokio::runtime::Runtime::new().unwrap().block_on(async {
            let (ls, addrs) = listeners(1).await;
            let out = run_stream(cfg(100.0, 50), &addrs, ls, Duration::from_secs(2))
                .await
                .unwrap();
            assert!(out.trace_events.is_empty());
        })
    }

    #[test]
    fn faster_path_carries_more() {
        tokio::runtime::Runtime::new().unwrap().block_on(async {
            // Path 0: 4 Mbps; path 1: 120 kbps. Video 800 kbps. The slow path
            // must sit well below *half* the demand: in the pull race each path
            // is offered up to half the stream, so a 400 kbps path (= exactly
            // half of 800 kbps) would legitimately keep up and earn ~50% — no
            // dominance to observe. At 120 kbps the slow path saturates, its
            // send buffer backs up, and path 0 takes the rest.
            let (ls, client_addrs) = listeners(2).await;
            let e0 = PathEmulator::spawn(
                PathProfile::steady(4_000_000.0, Duration::from_millis(5)),
                client_addrs[0],
                1,
            )
            .await
            .unwrap();
            let e1 = PathEmulator::spawn(
                PathProfile::steady(120_000.0, Duration::from_millis(5)),
                client_addrs[1],
                2,
            )
            .await
            .unwrap();
            let out = run_stream(
                cfg(69.0, 350), // ≈ 800 kbps for ~5 s
                &[e0.addr(), e1.addr()],
                ls,
                Duration::from_secs(3),
            )
            .await
            .unwrap();
            // Packets committed to the slow path's in-flight buffers (its queue
            // plus kernel send/receive buffers, ~60 packets) drain at only
            // ~10 pkt/s, so the tail cannot arrive within the grace window; the
            // invariant is that the fast path keeps the stream moving.
            let delivered = out.trace.delivered();
            assert!(delivered > 270, "delivered {delivered}");
            let shares = out.trace.path_shares(2);
            assert!(
                shares[0] > 1.5 * shares[1],
                "expected path 0 to dominate: {shares:?}"
            );
        })
    }

    #[test]
    fn constrained_paths_cause_late_packets_only_at_small_tau() {
        tokio::runtime::Runtime::new().unwrap().block_on(async {
            // Aggregate capacity ≈ 1.25× bitrate over two slow paths: delivery
            // works but needs buffering; τ = 0.05 s should show late packets,
            // τ = 10 s none.
            let (ls, client_addrs) = listeners(2).await;
            let mut addrs = Vec::new();
            for (i, &ca) in client_addrs.iter().enumerate() {
                let e = PathEmulator::spawn(
                    PathProfile::steady(500_000.0, Duration::from_millis(20)),
                    ca,
                    i as u64,
                )
                .await
                .unwrap();
                addrs.push(e.addr());
            }
            let out = run_stream(cfg(69.0, 300), &addrs, ls, Duration::from_secs(4))
                .await
                .unwrap();
            let report = dmp_core::metrics::LatenessReport::from_trace(&out.trace, &[0.05, 10.0]);
            let f_small = report.per_tau[0].playback_order;
            let f_large = report.per_tau[1].playback_order;
            assert!(f_large <= f_small);
            assert_eq!(f_large, 0.0, "10 s of buffer must absorb everything");
        })
    }
}
