//! `dmp-client` — receive a DMP-striped live stream on multiple TCP ports,
//! reassemble it, and report the fraction of late packets for a set of
//! startup delays.
//!
//! ```sh
//! dmp-client --listen 9001,9002 --mu 50 --tau 2,4,6,8
//! ```
//!
//! Clock handling: server timestamps ride in the frames but the two hosts'
//! clocks are not synchronised, so the client anchors the playback schedule
//! at the **minimum observed one-way latency** (the earliest packet is
//! assumed "on time"); all lateness is measured relative to that anchor.
//! This matches how the paper post-processes its tcpdump traces.

use std::sync::Arc;

use bytes::BytesMut;
use parking_lot::Mutex;
use tokio::io::AsyncReadExt;
use tokio::net::TcpListener;
use tokio::time::Instant;

use dmp_live::wire::{decode, DecodeError};

#[derive(Debug)]
struct Args {
    ports: Vec<u16>,
    mu: f64,
    taus: Vec<f64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        ports: vec![],
        mu: 50.0,
        taus: vec![2.0, 4.0, 6.0, 8.0, 10.0],
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().ok_or_else(|| format!("missing value for {flag}"));
        match flag.as_str() {
            "--listen" => {
                args.ports = val()?
                    .split(',')
                    .map(|p| p.parse().map_err(|e| format!("bad port: {e}")))
                    .collect::<Result<_, _>>()?
            }
            "--mu" => args.mu = val()?.parse().map_err(|e| format!("--mu: {e}"))?,
            "--tau" => {
                args.taus = val()?
                    .split(',')
                    .map(|t| t.parse().map_err(|e| format!("bad tau: {e}")))
                    .collect::<Result<_, _>>()?
            }
            "--help" | "-h" => {
                println!("usage: dmp-client --listen PORT[,PORT…] [--mu PKTS_PER_S] [--tau S,S,…]");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.ports.is_empty() {
        return Err("--listen is required (comma-separated list of ports)".into());
    }
    Ok(args)
}

/// (seq, server gen_ns, client arrival_ns, path)
type Record = (u64, u64, u64, usize);

fn main() -> std::io::Result<()> {
    tokio::runtime::Runtime::new().unwrap().block_on(async {
        let args = match parse_args() {
            Ok(a) => a,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        };
        println!(
            "listening on ports {:?} (µ = {} pkt/s)…",
            args.ports, args.mu
        );

        let records: Arc<Mutex<Vec<Record>>> = Arc::new(Mutex::new(Vec::new()));
        let epoch = Instant::now();
        let mut readers = Vec::new();
        for (path, &port) in args.ports.iter().enumerate() {
            let listener = TcpListener::bind(("0.0.0.0", port)).await?;
            let records = Arc::clone(&records);
            readers.push(tokio::spawn(async move {
                let (mut sock, peer) = listener.accept().await?;
                println!("path {path}: accepted {peer}");
                sock.set_nodelay(true)?;
                let mut buf = BytesMut::with_capacity(64 * 1024);
                let mut tmp = vec![0u8; 16 * 1024];
                let mut count = 0u64;
                loop {
                    match sock.read(&mut tmp).await {
                        Ok(0) | Err(_) => break,
                        Ok(n) => {
                            buf.extend_from_slice(&tmp[..n]);
                            loop {
                                match decode(&mut buf) {
                                    Ok(frame) => {
                                        let now = epoch.elapsed().as_nanos() as u64;
                                        records.lock().push((frame.seq, frame.gen_ns, now, path));
                                        count += 1;
                                    }
                                    Err(DecodeError::Incomplete) => break,
                                    Err(DecodeError::Corrupt) => {
                                        eprintln!("path {path}: corrupt stream");
                                        return Ok::<u64, std::io::Error>(count);
                                    }
                                }
                            }
                        }
                    }
                }
                Ok(count)
            }));
        }
        for (path, r) in readers.into_iter().enumerate() {
            match r.await {
                Ok(Ok(n)) => println!("path {path}: received {n} packets"),
                other => eprintln!("path {path}: reader error: {other:?}"),
            }
        }

        // Post-process: anchor the schedule at the minimum one-way latency.
        let records = records.lock();
        if records.is_empty() {
            println!("no packets received");
            return Ok(());
        }
        let offset = records
            .iter()
            .map(|&(_, gen, arr, _)| arr as i128 - gen as i128)
            .min()
            .expect("non-empty");
        let total = records.len() as f64;
        let max_seq = records.iter().map(|r| r.0).max().expect("non-empty");
        println!(
            "\nreceived {} packets (highest seq {max_seq}); min one-way skew anchor applied",
            records.len()
        );
        let mut shares = std::collections::BTreeMap::new();
        for r in records.iter() {
            *shares.entry(r.3).or_insert(0u64) += 1;
        }
        for (path, n) in shares {
            println!(
                "path {path}: {:.1}% of the stream",
                100.0 * n as f64 / total
            );
        }
        println!("\nstartup delay → fraction of late packets:");
        for &tau in &args.taus {
            let tau_ns = (tau * 1e9) as i128;
            let late = records
                .iter()
                .filter(|&&(_, gen, arr, _)| arr as i128 - gen as i128 - offset > tau_ns)
                .count() as f64
                + (max_seq + 1) as f64
                - total; // packets never received are late
            println!("  τ = {tau:>5.1} s → {:.3e}", late / (max_seq + 1) as f64);
        }
        Ok(())
    })
}
