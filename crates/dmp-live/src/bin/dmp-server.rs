//! `dmp-server` — stream a live CBR video over multiple TCP connections with
//! DMP scheduling (one connection per path; backpressure-driven striping).
//!
//! ```sh
//! dmp-server --connect 10.0.0.2:9001,10.0.1.2:9002 --mu 50 --seconds 60
//! ```
//!
//! Each address should be reached over a *different* network path
//! (multihoming, different interfaces, or the `dmp-client`'s ports bridged
//! through emulators/netem). The server needs no knowledge of path
//! bandwidths: senders pull from a shared queue whenever their socket
//! accepts more data.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

use bytes::BytesMut;
use parking_lot::Mutex;
use tokio::io::AsyncWriteExt;
use tokio::net::TcpSocket;
use tokio::sync::Notify;
use tokio::time::Instant;

use dmp_live::wire::{encode, Frame};

#[derive(Debug)]
struct Args {
    connect: Vec<String>,
    mu: f64,
    packet_bytes: usize,
    seconds: f64,
    sndbuf: u32,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        connect: vec![],
        mu: 50.0,
        packet_bytes: 1448,
        seconds: 30.0,
        sndbuf: 16 * 1024,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().ok_or_else(|| format!("missing value for {flag}"));
        match flag.as_str() {
            "--connect" => args.connect = val()?.split(',').map(str::to_string).collect(),
            "--mu" => args.mu = val()?.parse().map_err(|e| format!("--mu: {e}"))?,
            "--packet-bytes" => {
                args.packet_bytes = val()?.parse().map_err(|e| format!("--packet-bytes: {e}"))?
            }
            "--seconds" => args.seconds = val()?.parse().map_err(|e| format!("--seconds: {e}"))?,
            "--sndbuf" => args.sndbuf = val()?.parse().map_err(|e| format!("--sndbuf: {e}"))?,
            "--help" | "-h" => {
                println!(
                    "usage: dmp-server --connect HOST:PORT[,HOST:PORT…] [--mu PKTS_PER_S] \
                     [--packet-bytes N] [--seconds S] [--sndbuf BYTES]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.connect.is_empty() {
        return Err("--connect is required (comma-separated list of client endpoints)".into());
    }
    Ok(args)
}

#[derive(Default)]
struct Queue {
    q: Mutex<VecDeque<Frame>>,
    notify: Notify,
    done: std::sync::atomic::AtomicBool,
}

fn main() -> std::io::Result<()> {
    tokio::runtime::Runtime::new().unwrap().block_on(async {
        let args = match parse_args() {
            Ok(a) => a,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        };
        let packets = (args.seconds * args.mu) as u64;
        println!(
            "streaming {} packets ({} pkt/s × {:.0} s, {} B each ≈ {:.0} kbps) over {} path(s)",
            packets,
            args.mu,
            args.seconds,
            args.packet_bytes,
            args.mu * args.packet_bytes as f64 * 8.0 / 1e3,
            args.connect.len()
        );

        let queue = Arc::new(Queue::default());
        let mut senders = Vec::new();
        for (k, addr) in args.connect.iter().enumerate() {
            let addr: std::net::SocketAddr = addr
                .parse()
                .unwrap_or_else(|e| panic!("bad address {addr}: {e}"));
            let socket = TcpSocket::new_v4()?;
            socket.set_send_buffer_size(args.sndbuf)?;
            let mut sock = socket.connect(addr).await?;
            sock.set_nodelay(true)?;
            println!("path {k}: connected to {addr}");
            let queue = Arc::clone(&queue);
            let packet_bytes = args.packet_bytes;
            senders.push(tokio::spawn(async move {
                let mut out = BytesMut::with_capacity(packet_bytes);
                let mut sent = 0u64;
                loop {
                    let frame = { queue.q.lock().pop_front() };
                    match frame {
                        Some(f) => {
                            out.clear();
                            encode(&f, packet_bytes, &mut out);
                            if sock.write_all(&out).await.is_err() {
                                break;
                            }
                            sent += 1;
                        }
                        None if queue.done.load(std::sync::atomic::Ordering::SeqCst) => break,
                        None => queue.notify.notified().await,
                    }
                }
                let _ = sock.shutdown().await;
                sent
            }));
        }

        // CBR generator.
        let epoch = Instant::now();
        let interval = Duration::from_secs_f64(1.0 / args.mu);
        let mut next = epoch;
        for seq in 0..packets {
            next += interval;
            tokio::time::sleep_until(next).await;
            let gen_ns = epoch.elapsed().as_nanos() as u64;
            queue.q.lock().push_back(Frame { seq, gen_ns });
            queue.notify.notify_waiters();
        }
        queue.done.store(true, std::sync::atomic::Ordering::SeqCst);
        queue.notify.notify_waiters();

        for (k, h) in senders.into_iter().enumerate() {
            if let Ok(sent) = h.await {
                println!(
                    "path {k}: sent {sent} packets ({:.0}%)",
                    100.0 * sent as f64 / packets as f64
                );
            }
        }
        println!("done in {:.1} s", epoch.elapsed().as_secs_f64());
        Ok(())
    })
}
