//! In-process network-path emulator: a TCP proxy that forwards bytes through
//! a bandwidth shaper with propagation delay and a bounded queue.
//!
//! This substitutes for the paper's Internet paths (PlanetLab + ADSL hosts).
//! Packet loss cannot be injected into a kernel TCP stream without root
//! privileges, so congestion is emulated where it actually bites a TCP
//! streamer: as **time-varying achievable throughput**. The shaper's service
//! rate is resampled at random intervals from a configurable band; the
//! bounded queue plus TCP flow control push backpressure all the way to the
//! server's send buffer — exactly the signal DMP-streaming schedules on.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use scenario::PathSchedule;
use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::{TcpSocket, TcpStream};
use tokio::sync::mpsc;
use tokio::time::Instant;

/// Emulated path characteristics.
#[derive(Debug, Clone, Copy)]
pub struct PathProfile {
    /// Mean service rate, bits per second.
    pub rate_bps: f64,
    /// Relative rate variability: each resample draws uniformly from
    /// `rate_bps × [1−v, 1+v]`. 0 = constant-rate path.
    pub variability: f64,
    /// Mean time between rate resamples.
    pub resample_every: Duration,
    /// One-way propagation delay added after shaping.
    pub delay: Duration,
    /// Shaper queue bound, bytes (the "router buffer" of the path).
    pub queue_bytes: usize,
}

impl PathProfile {
    /// A steady path: fixed rate, fixed delay, 64 KiB queue.
    pub fn steady(rate_bps: f64, delay: Duration) -> Self {
        Self {
            rate_bps,
            variability: 0.0,
            resample_every: Duration::from_secs(1),
            delay,
            queue_bytes: 64 * 1024,
        }
    }
}

/// One shaping state the emulator actually applied, with when it took
/// effect (relative to the proxy accepting its connection).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppliedPoint {
    /// When this state took effect.
    pub t: Duration,
    /// Service rate in force, bits per second.
    pub rate_bps: f64,
    /// One-way propagation delay in force.
    pub delay: Duration,
    /// True while the path was administratively down.
    pub down: bool,
}

/// Byte counters exposed by a running emulator.
#[derive(Debug, Default)]
pub struct PathStats {
    /// Bytes forwarded downstream.
    pub bytes_forwarded: AtomicU64,
    /// Every shaping state the path applied, in order: the initial state,
    /// each random resample, and each scripted step. This is the ground
    /// truth of what the emulated path did during a run.
    pub timeline: parking_lot::Mutex<Vec<AppliedPoint>>,
}

/// A running path emulator: connect the upstream (server) to
/// [`PathEmulator::addr`]; bytes come out at `downstream_addr` shaped by the
/// profile.
pub struct PathEmulator {
    addr: std::net::SocketAddr,
    /// Counters.
    pub stats: Arc<PathStats>,
}

impl PathEmulator {
    /// Spawn an emulator forwarding one inbound connection to
    /// `downstream_addr`. Returns immediately; the proxy runs until either
    /// side closes.
    pub async fn spawn(
        profile: PathProfile,
        downstream_addr: std::net::SocketAddr,
        seed: u64,
    ) -> std::io::Result<Self> {
        Self::spawn_scripted(profile, downstream_addr, seed, None).await
    }

    /// [`PathEmulator::spawn`], optionally replacing the random rate
    /// resampler with a scripted [`PathSchedule`] (rate/delay factors on the
    /// profile's base values, plus down intervals). Schedule times are
    /// relative to the proxy accepting its connection — effectively the
    /// start of the stream.
    pub async fn spawn_scripted(
        profile: PathProfile,
        downstream_addr: std::net::SocketAddr,
        seed: u64,
        schedule: Option<PathSchedule>,
    ) -> std::io::Result<Self> {
        // Cap the upstream receive buffer: kernel autotuning would otherwise
        // grow it to hundreds of KB on loopback, letting a slow path absorb
        // most of a short stream into in-flight kernel buffers and blunting
        // the backpressure signal DMP schedules on. 16 KiB (the kernel
        // doubles it) keeps the path's queue the dominant buffer, so results
        // do not depend on host tcp_rmem settings.
        let socket = TcpSocket::new_v4()?;
        socket.set_recv_buffer_size(UPSTREAM_RCVBUF)?;
        socket.bind("127.0.0.1:0".parse().expect("literal addr"))?;
        let listener = socket.listen(8)?;
        let addr = listener.local_addr()?;
        let stats = Arc::new(PathStats::default());
        let stats2 = Arc::clone(&stats);
        tokio::spawn(async move {
            if let Ok((upstream, _)) = listener.accept().await {
                let _ = run_proxy(upstream, downstream_addr, profile, seed, stats2, schedule).await;
            }
        });
        Ok(Self { addr, stats })
    }

    /// Address the upstream should connect to.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Snapshot of the applied shaping timeline so far.
    pub fn timeline(&self) -> Vec<AppliedPoint> {
        self.stats.timeline.lock().clone()
    }
}

/// Chunk size forwarded through the shaper (one video packet fits).
const CHUNK: usize = 2048;

/// `SO_RCVBUF` for the upstream (server-facing) side of the proxy; see
/// [`PathEmulator::spawn`].
const UPSTREAM_RCVBUF: u32 = 16 * 1024;

async fn run_proxy(
    mut upstream: TcpStream,
    downstream_addr: std::net::SocketAddr,
    profile: PathProfile,
    seed: u64,
    stats: Arc<PathStats>,
    schedule: Option<PathSchedule>,
) -> std::io::Result<()> {
    let mut downstream = TcpStream::connect(downstream_addr).await?;
    downstream.set_nodelay(true)?;
    upstream.set_nodelay(true)?;

    // Bounded channel = the path's queue. Reader applies backpressure to the
    // upstream TCP connection simply by not reading while the queue is full.
    let depth = (profile.queue_bytes / CHUNK).max(2);
    let (tx, mut rx) = mpsc::channel::<Vec<u8>>(depth);

    // Reader: upstream → queue.
    let reader = tokio::spawn(async move {
        let mut buf = vec![0u8; CHUNK];
        loop {
            match upstream.read(&mut buf).await {
                Ok(0) | Err(_) => break,
                Ok(n) => {
                    if tx.send(buf[..n].to_vec()).await.is_err() {
                        break;
                    }
                }
            }
        }
    });

    // Shaper: queue → serialisation discipline → (release time, chunk).
    // Kept separate from the propagation-delay stage so the delay does not
    // leak into the pacing (a transmitted chunk propagates while the next
    // one is already being serialised, as on a real link).
    let (dtx, mut drx) = mpsc::channel::<(Instant, Vec<u8>)>(depth.max(64));
    let shaper_stats = Arc::clone(&stats);
    let shaper = tokio::spawn(async move {
        let start = Instant::now();
        let record = |t: Duration, rate_bps: f64, delay: Duration, down: bool| {
            shaper_stats.timeline.lock().push(AppliedPoint {
                t,
                rate_bps,
                delay,
                down,
            });
        };
        match schedule {
            // Scripted mode: the schedule dictates rate/delay/down; the
            // random resampler is disabled entirely.
            Some(sched) => {
                let mut applied: Option<scenario::LiveStep> = None;
                let mut vclock = Instant::now();
                'stream: while let Some(chunk) = rx.recv().await {
                    // Resolve the state in force, waiting out down periods
                    // (a down path delays its queue; TCP loses nothing).
                    let st = loop {
                        let elapsed = start.elapsed();
                        let st = sched.state_at(elapsed);
                        if applied != Some(st) {
                            record(
                                elapsed,
                                profile.rate_bps * st.rate_factor,
                                profile.delay.mul_f64(st.delay_factor),
                                st.down,
                            );
                            applied = Some(st);
                        }
                        if !st.down {
                            break st;
                        }
                        match sched.next_change_after(elapsed) {
                            Some(at) => tokio::time::sleep_until(start + at).await,
                            // Down forever: abandon the stream (downstream
                            // closes once the delay stage drains).
                            None => break 'stream,
                        }
                    };
                    let rate = profile.rate_bps * st.rate_factor;
                    let delay = profile.delay.mul_f64(st.delay_factor);
                    let tx_time = Duration::from_secs_f64(chunk.len() as f64 * 8.0 / rate);
                    vclock = vclock.max(Instant::now()) + tx_time;
                    tokio::time::sleep_until(vclock).await;
                    if dtx.send((vclock + delay, chunk)).await.is_err() {
                        break;
                    }
                }
            }
            // Random mode: the original seeded resampler.
            None => {
                let mut rng = SmallRng::seed_from_u64(seed);
                let mut rate = profile.rate_bps;
                let mut next_resample = Instant::now() + profile.resample_every;
                record(Duration::ZERO, rate, profile.delay, false);
                // Virtual transmit clock for the serialisation discipline.
                let mut vclock = Instant::now();
                while let Some(chunk) = rx.recv().await {
                    let now = Instant::now();
                    if profile.variability > 0.0 && now >= next_resample {
                        let v = profile.variability;
                        rate = profile.rate_bps * rng.gen_range(1.0 - v..=1.0 + v);
                        record(start.elapsed(), rate, profile.delay, false);
                        // Jitter the resample interval ±50% so paths
                        // decorrelate.
                        let jitter = rng.gen_range(0.5..1.5);
                        next_resample = now + profile.resample_every.mul_f64(jitter);
                    }
                    let tx_time = Duration::from_secs_f64(chunk.len() as f64 * 8.0 / rate);
                    vclock = vclock.max(now) + tx_time;
                    tokio::time::sleep_until(vclock).await;
                    if dtx.send((vclock + profile.delay, chunk)).await.is_err() {
                        break;
                    }
                }
            }
        }
    });

    // Delay stage: release each chunk `delay` after it finished serialising
    // (release times are monotone, so FIFO order is preserved).
    while let Some((release_at, chunk)) = drx.recv().await {
        tokio::time::sleep_until(release_at).await;
        if downstream.write_all(&chunk).await.is_err() {
            break;
        }
        stats
            .bytes_forwarded
            .fetch_add(chunk.len() as u64, Ordering::Relaxed);
    }
    let _ = downstream.shutdown().await;
    shaper.abort();
    reader.abort();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tokio::net::TcpListener;

    /// Pump `n` bytes through an emulator and return the elapsed time.
    async fn pump(profile: PathProfile, n: usize) -> Duration {
        let sink = TcpListener::bind("127.0.0.1:0").await.unwrap();
        let sink_addr = sink.local_addr().unwrap();
        let emu = PathEmulator::spawn(profile, sink_addr, 7).await.unwrap();

        let recv = tokio::spawn(async move {
            let (mut s, _) = sink.accept().await.unwrap();
            let mut total = 0usize;
            let mut buf = vec![0u8; 8192];
            let start = Instant::now();
            while total < n {
                match s.read(&mut buf).await {
                    Ok(0) | Err(_) => break,
                    Ok(k) => total += k,
                }
            }
            (start.elapsed(), total)
        });

        let mut up = TcpStream::connect(emu.addr()).await.unwrap();
        let data = vec![0xabu8; n];
        let send_start = Instant::now();
        up.write_all(&data).await.unwrap();
        up.shutdown().await.unwrap();
        let (_elapsed_recv, total) = recv.await.unwrap();
        assert_eq!(total, n);
        send_start.elapsed()
    }

    #[test]
    fn shaper_enforces_rate() {
        tokio::runtime::Runtime::new().unwrap().block_on(async {
            // 400 kbps, 100 KB → ≥ 2.0 s.
            let profile = PathProfile::steady(400_000.0, Duration::from_millis(1));
            let elapsed = pump(profile, 100_000).await;
            let secs = elapsed.as_secs_f64();
            assert!(secs > 1.7, "took {secs:.2}s, shaping too loose");
            assert!(secs < 4.0, "took {secs:.2}s, shaping too tight");
        })
    }

    #[test]
    fn fast_path_is_fast() {
        tokio::runtime::Runtime::new().unwrap().block_on(async {
            let profile = PathProfile::steady(50_000_000.0, Duration::from_millis(1));
            let elapsed = pump(profile, 100_000).await;
            assert!(elapsed.as_secs_f64() < 1.0, "took {:?}", elapsed);
        })
    }

    #[test]
    fn scripted_down_interval_stalls_then_resumes() {
        use scenario::LiveStep;
        tokio::runtime::Runtime::new().unwrap().block_on(async {
            // 2 Mbps path, down from 0.2 s to 0.9 s. 100 KB needs ~0.4 s of
            // service, so the transfer must straddle the outage: it completes,
            // but not before the path comes back up.
            let profile = PathProfile::steady(2_000_000.0, Duration::from_millis(1));
            let mk = |at_ms: u64, down: bool| LiveStep {
                at: Duration::from_millis(at_ms),
                rate_factor: 1.0,
                delay_factor: 1.0,
                down,
            };
            let sched = PathSchedule {
                steps: vec![mk(0, false), mk(200, true), mk(900, false)],
            };

            let sink = TcpListener::bind("127.0.0.1:0").await.unwrap();
            let sink_addr = sink.local_addr().unwrap();
            let emu = PathEmulator::spawn_scripted(profile, sink_addr, 7, Some(sched))
                .await
                .unwrap();
            let n = 100_000usize;
            let recv = tokio::spawn(async move {
                let (mut s, _) = sink.accept().await.unwrap();
                let mut total = 0usize;
                let mut buf = vec![0u8; 8192];
                while total < n {
                    match s.read(&mut buf).await {
                        Ok(0) | Err(_) => break,
                        Ok(k) => total += k,
                    }
                }
                total
            });
            let mut up = TcpStream::connect(emu.addr()).await.unwrap();
            let t0 = Instant::now();
            up.write_all(&vec![0xcdu8; n]).await.unwrap();
            up.shutdown().await.unwrap();
            let total = recv.await.unwrap();
            let secs = t0.elapsed().as_secs_f64();
            assert_eq!(total, n, "transfer must survive the outage");
            assert!(secs > 0.85, "finished in {secs:.2}s — outage not enforced");
            assert!(secs < 3.0, "took {secs:.2}s — never recovered");

            // The applied timeline records the outage.
            let tl = emu.timeline();
            assert!(tl.iter().any(|p| p.down), "no down point in {tl:?}");
            assert!(
                tl.iter()
                    .any(|p| !p.down && p.t >= Duration::from_millis(800)),
                "no recovery point in {tl:?}"
            );
        })
    }

    #[test]
    fn delay_is_applied() {
        tokio::runtime::Runtime::new().unwrap().block_on(async {
            // Tiny transfer: elapsed ≈ one-way delay.
            let profile = PathProfile::steady(10_000_000.0, Duration::from_millis(150));
            let sink = TcpListener::bind("127.0.0.1:0").await.unwrap();
            let sink_addr = sink.local_addr().unwrap();
            let emu = PathEmulator::spawn(profile, sink_addr, 1).await.unwrap();
            let accept = tokio::spawn(async move {
                let (mut s, _) = sink.accept().await.unwrap();
                let mut buf = [0u8; 16];
                let _ = s.read_exact(&mut buf).await;
                Instant::now()
            });
            let mut up = TcpStream::connect(emu.addr()).await.unwrap();
            let t0 = Instant::now();
            up.write_all(&[0u8; 16]).await.unwrap();
            let t1 = accept.await.unwrap();
            let owd = (t1 - t0).as_secs_f64();
            assert!(owd > 0.14, "one-way delay {owd:.3}s");
            assert!(owd < 0.5, "one-way delay {owd:.3}s");
        })
    }
}
