//! Process-wide registry of applied path timelines.
//!
//! Live experiments run inside worker jobs that only return compact
//! summaries; the emulator timelines ([`crate::emulator::AppliedPoint`]) are
//! side-band evidence of what each emulated path actually did. Experiments
//! register them here and the bench harness drains the registry into the
//! artifact's `.meta.json` sidecar.

use parking_lot::Mutex;

use crate::emulator::AppliedPoint;

static REGISTRY: Mutex<Vec<(String, Vec<AppliedPoint>)>> = Mutex::new(Vec::new());

/// Register one path's applied timeline under a label (e.g.
/// `"seed3-path0"`). Timestamps should already be in nominal (undilated)
/// time.
pub fn record_timeline(label: impl Into<String>, timeline: Vec<AppliedPoint>) {
    REGISTRY.lock().push((label.into(), timeline));
}

/// Take every registered timeline, leaving the registry empty.
pub fn drain_timelines() -> Vec<(String, Vec<AppliedPoint>)> {
    std::mem::take(&mut *REGISTRY.lock())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn record_and_drain() {
        record_timeline(
            "t0",
            vec![AppliedPoint {
                t: Duration::ZERO,
                rate_bps: 1e6,
                delay: Duration::from_millis(20),
                down: false,
            }],
        );
        let drained = drain_timelines();
        assert!(drained.iter().any(|(l, tl)| l == "t0" && tl.len() == 1));
        // Drained means gone (other tests may interleave, so only check t0).
        assert!(!drain_timelines().iter().any(|(l, _)| l == "t0"));
    }
}
