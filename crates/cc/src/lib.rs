//! Deterministic pluggable congestion control for the netsim TCP sender.
//!
//! The paper's results are derived entirely under Reno; this crate lifts the
//! loss-response/growth logic that used to be hard-coded in
//! `netsim::tcp::sender` behind the [`CcAlgo`] trait so the same sender can
//! run [`Reno`] (byte-identical to the historical implementation), [`Cubic`]
//! (RFC 8312 window curve with the TCP-friendly region) or [`BbrLite`] (a
//! simplified model-based controller: windowed max delivery-rate and min-RTT
//! filters driving a startup/drain/probe gain cycle).
//!
//! Everything here is pure arithmetic over `u64` nanoseconds and `f64`
//! segment counts — no clocks, no randomness, no allocation — so a given
//! sequence of [`AckCtx`] inputs always produces the same window trajectory
//! regardless of engine kind or host. The sender owns all loss *detection*
//! (dupack counting, RTO timers, NewReno partial-ACK bookkeeping) and calls
//! the trait hooks at the exact points the old inline Reno code mutated
//! `cwnd`/`ssthresh`; the algorithms own only the *response*.

/// Which congestion-control algorithm a sender runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CcKind {
    /// Classic Reno/NewReno response: the paper baseline. Byte-identical to
    /// the pre-refactor hard-coded sender arithmetic.
    #[default]
    Reno,
    /// CUBIC (RFC 8312): cubic window curve around the last loss epoch with
    /// the TCP-friendly (Reno-tracking) lower region.
    Cubic,
    /// Simplified BBR: delivery-rate and min-RTT filters sizing the window
    /// to a gain multiple of the estimated BDP; loss-agnostic except for RTO.
    BbrLite,
}

impl CcKind {
    /// Stable lowercase name used in trace events and artifact keys.
    pub fn name(self) -> &'static str {
        match self {
            CcKind::Reno => "reno",
            CcKind::Cubic => "cubic",
            CcKind::BbrLite => "bbr-lite",
        }
    }

    /// Every algorithm, in canonical sweep order.
    pub fn all() -> [CcKind; 3] {
        [CcKind::Reno, CcKind::Cubic, CcKind::BbrLite]
    }
}

/// Static window bounds shared by every algorithm (mirrors the sender's
/// `initial_cwnd`/`max_wnd` tunables).
#[derive(Debug, Clone, Copy)]
pub struct CcConfig {
    /// Initial congestion window, segments.
    pub initial_cwnd: f64,
    /// Maximum window (receiver's advertised window stand-in), segments.
    pub max_wnd: f64,
}

/// Per-event context handed to the hooks: everything an algorithm may read,
/// gathered by the sender *before* it mutates its own connection state.
#[derive(Debug, Clone, Copy)]
pub struct AckCtx {
    /// Simulation time of the event, nanoseconds.
    pub now_ns: u64,
    /// Segments newly cumulatively acknowledged by this ACK (0 on loss/RTO).
    pub newly_acked: u64,
    /// Karn-valid RTT sample carried by this ACK, seconds, if any.
    pub rtt_sample_s: Option<f64>,
    /// Current smoothed RTT, seconds (None before the first sample).
    pub srtt_s: Option<f64>,
    /// Segments in flight when the event arrived (before this ACK advanced
    /// the window).
    pub inflight: u64,
    /// RFC 2861 congestion-window validation: true when the flow had enough
    /// data (in flight + queued) to fill the window, i.e. the window — not
    /// the application — was the limit. Algorithms must not grow on
    /// application-limited ACKs.
    pub cwnd_limited: bool,
}

/// A deterministic congestion-control algorithm.
///
/// The sender calls exactly one hook per protocol event; `cwnd()` after the
/// call is the new window. Hooks not meaningful for an algorithm are no-ops
/// (e.g. [`BbrLite`] ignores dupack inflation).
pub trait CcAlgo {
    /// Which algorithm this is.
    fn kind(&self) -> CcKind;
    /// Current congestion window, segments (fractional).
    fn cwnd(&self) -> f64;
    /// Current slow-start threshold, segments (reported in trace marks).
    fn ssthresh(&self) -> f64;
    /// A new cumulative ACK arrived outside recovery: grow the window.
    fn on_ack(&mut self, ctx: &AckCtx);
    /// Third duplicate ACK: loss detected, entering fast recovery.
    fn on_dupack_loss(&mut self);
    /// Further duplicate ACK while in recovery (Reno window inflation).
    fn on_dupack_inflate(&mut self);
    /// NewReno partial ACK while in recovery: deflate by the amount acked.
    fn on_partial_ack(&mut self, newly_acked: u64);
    /// Recovery ended on a full ACK: deflate to the post-recovery window.
    fn on_exit_recovery(&mut self);
    /// Retransmission timeout fired.
    fn on_rto(&mut self);
    /// Window the sender may keep in flight right now. Defaults to
    /// [`CcAlgo::cwnd`]; an algorithm could pace below its cwnd here.
    fn pacing_window(&self) -> f64 {
        self.cwnd()
    }
    /// Reset to the initial state (fresh connection for a new transfer).
    fn reset(&mut self);
}

// ---------------------------------------------------------------------------
// Reno
// ---------------------------------------------------------------------------

/// Classic Reno response, byte-identical to the arithmetic that used to live
/// inline in the netsim sender: slow start +1/ACK, congestion avoidance
/// +1/cwnd, halving (floor 2) on loss, `ssthresh + 3` on recovery entry,
/// window of 1 after RTO.
#[derive(Debug, Clone, Copy)]
pub struct Reno {
    cfg: CcConfig,
    cwnd: f64,
    ssthresh: f64,
}

impl Reno {
    /// A fresh Reno controller.
    pub fn new(cfg: CcConfig) -> Self {
        Self {
            cfg,
            cwnd: cfg.initial_cwnd,
            ssthresh: cfg.max_wnd,
        }
    }
}

impl CcAlgo for Reno {
    fn kind(&self) -> CcKind {
        CcKind::Reno
    }
    fn cwnd(&self) -> f64 {
        self.cwnd
    }
    fn ssthresh(&self) -> f64 {
        self.ssthresh
    }
    fn on_ack(&mut self, ctx: &AckCtx) {
        if !ctx.cwnd_limited {
            return;
        }
        if self.cwnd < self.ssthresh {
            // Slow start: +1 per ACK received (delayed ACKs halve the rate,
            // as in real stacks without ABC).
            self.cwnd = (self.cwnd + 1.0).min(self.cfg.max_wnd);
        } else {
            // Congestion avoidance: +1/cwnd per ACK.
            self.cwnd = (self.cwnd + 1.0 / self.cwnd).min(self.cfg.max_wnd);
        }
    }
    fn on_dupack_loss(&mut self) {
        self.ssthresh = (self.cwnd / 2.0).max(2.0);
        self.cwnd = self.ssthresh + 3.0;
    }
    fn on_dupack_inflate(&mut self) {
        // Window inflation lets new data out during recovery.
        self.cwnd = (self.cwnd + 1.0).min(self.cfg.max_wnd + 3.0);
    }
    fn on_partial_ack(&mut self, newly_acked: u64) {
        self.cwnd = (self.cwnd - newly_acked as f64 + 1.0).max(1.0);
    }
    fn on_exit_recovery(&mut self) {
        self.cwnd = self.ssthresh.max(1.0);
    }
    fn on_rto(&mut self) {
        self.ssthresh = (self.cwnd / 2.0).max(2.0);
        self.cwnd = 1.0;
    }
    fn reset(&mut self) {
        self.cwnd = self.cfg.initial_cwnd;
        self.ssthresh = self.cfg.max_wnd;
    }
}

// ---------------------------------------------------------------------------
// CUBIC
// ---------------------------------------------------------------------------

/// RFC 8312 scaling constant C.
pub const CUBIC_C: f64 = 0.4;
/// RFC 8312 multiplicative decrease factor β.
pub const CUBIC_BETA: f64 = 0.7;
/// RTT assumed before the first sample (only affects the first epoch).
const CUBIC_DEFAULT_RTT_S: f64 = 0.1;

/// CUBIC (RFC 8312): after a loss the window follows the cubic curve
/// `W(t) = C·(t − K)³ + W_max` anchored at the pre-loss window `W_max`,
/// concave up to the plateau and convex (probing) beyond it, with the
/// TCP-friendly region as a lower bound so short-RTT flows never do worse
/// than Reno. Loss-recovery *mechanics* (dupack inflation, partial-ACK
/// deflation) reuse the Reno plumbing — only growth and decrease differ.
#[derive(Debug, Clone, Copy)]
pub struct Cubic {
    cfg: CcConfig,
    cwnd: f64,
    ssthresh: f64,
    /// Window just before the last decrease (the curve's plateau).
    w_max: f64,
    /// Time, seconds, for the curve to return to `w_max`.
    k: f64,
    /// Start of the current growth epoch (None until the first post-loss
    /// congestion-avoidance ACK re-anchors the curve).
    epoch_start_ns: Option<u64>,
    /// TCP-friendly Reno estimate for the current epoch.
    w_est: f64,
}

impl Cubic {
    /// A fresh CUBIC controller.
    pub fn new(cfg: CcConfig) -> Self {
        Self {
            cfg,
            cwnd: cfg.initial_cwnd,
            ssthresh: cfg.max_wnd,
            w_max: 0.0,
            k: 0.0,
            epoch_start_ns: None,
            w_est: 0.0,
        }
    }

    /// The closed-form curve `W(t) = C·(t − K)³ + W_max` for the current
    /// epoch (public so tests can compare the trajectory against it).
    pub fn w_cubic(&self, t_s: f64) -> f64 {
        CUBIC_C * (t_s - self.k).powi(3) + self.w_max
    }
}

impl CcAlgo for Cubic {
    fn kind(&self) -> CcKind {
        CcKind::Cubic
    }
    fn cwnd(&self) -> f64 {
        self.cwnd
    }
    fn ssthresh(&self) -> f64 {
        self.ssthresh
    }
    fn on_ack(&mut self, ctx: &AckCtx) {
        if !ctx.cwnd_limited {
            return;
        }
        if self.cwnd < self.ssthresh {
            self.cwnd = (self.cwnd + 1.0).min(self.cfg.max_wnd);
            return;
        }
        let rtt_s = ctx.srtt_s.unwrap_or(CUBIC_DEFAULT_RTT_S);
        let epoch = *self.epoch_start_ns.get_or_insert_with(|| {
            // First CA ack of the epoch: anchor the curve. If the window
            // already passed the old plateau, restart the curve from here.
            if self.w_max > self.cwnd {
                self.k = ((self.w_max - self.cwnd) / CUBIC_C).cbrt();
            } else {
                self.w_max = self.cwnd;
                self.k = 0.0;
            }
            self.w_est = self.cwnd;
            ctx.now_ns
        });
        // Target the curve one RTT ahead (RFC 8312 §4.1: t = elapsed + RTT).
        let t_s = (ctx.now_ns - epoch) as f64 / 1e9 + rtt_s;
        let target = self.w_cubic(t_s);
        // TCP-friendly region: the window Reno would have (aggregated AIMD
        // rate 3(1−β)/(1+β) per RTT, spread over cwnd ACKs).
        self.w_est += 3.0 * (1.0 - CUBIC_BETA) / (1.0 + CUBIC_BETA) / self.cwnd;
        let grown = if target > self.cwnd {
            self.cwnd + (target - self.cwnd) / self.cwnd
        } else {
            // At or past the curve: probe very slowly until it catches up.
            self.cwnd + 0.01 / self.cwnd
        };
        self.cwnd = grown.max(self.w_est).min(self.cfg.max_wnd);
    }
    fn on_dupack_loss(&mut self) {
        // Fast convergence: when the new loss happens below the previous
        // plateau, the flow is ceding bandwidth — shrink the plateau too.
        self.w_max = if self.cwnd < self.w_max {
            self.cwnd * (2.0 - CUBIC_BETA) / 2.0
        } else {
            self.cwnd
        };
        self.epoch_start_ns = None;
        self.ssthresh = (self.cwnd * CUBIC_BETA).max(2.0);
        // `+ 3.0`: same recovery-entry inflation as Reno (the three dupacks
        // that signalled the loss have left the network).
        self.cwnd = self.ssthresh + 3.0;
    }
    fn on_dupack_inflate(&mut self) {
        self.cwnd = (self.cwnd + 1.0).min(self.cfg.max_wnd + 3.0);
    }
    fn on_partial_ack(&mut self, newly_acked: u64) {
        self.cwnd = (self.cwnd - newly_acked as f64 + 1.0).max(1.0);
    }
    fn on_exit_recovery(&mut self) {
        self.cwnd = self.ssthresh.max(1.0);
    }
    fn on_rto(&mut self) {
        self.w_max = self.cwnd.max(1.0);
        self.epoch_start_ns = None;
        self.ssthresh = (self.cwnd * CUBIC_BETA).max(2.0);
        self.cwnd = 1.0;
    }
    fn reset(&mut self) {
        *self = Self::new(self.cfg);
    }
}

// ---------------------------------------------------------------------------
// BBR-lite
// ---------------------------------------------------------------------------

/// Windowed-max bottleneck-bandwidth filter horizon, seconds.
pub const BBR_BW_WINDOW_S: f64 = 10.0;
/// Min-RTT filter horizon, seconds (RFC-draft BBR uses 10 s).
pub const BBR_MIN_RTT_WINDOW_S: f64 = 10.0;
/// Startup window gain (2/ln 2, enough to double delivery rate per round).
pub const BBR_STARTUP_GAIN: f64 = 2.885;
/// Steady-state window gain over the estimated BDP.
pub const BBR_CWND_GAIN: f64 = 2.0;
/// ProbeBW pacing-gain cycle, applied to the window in this pacing-free
/// model: one phase per min-RTT, probe up, drain the probe, then cruise.
pub const BBR_PROBE_CYCLE: [f64; 8] = [1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
/// Startup exits when the bandwidth filter grew less than 25% for this many
/// consecutive rounds.
const BBR_FULL_BW_ROUNDS: u32 = 3;
/// Floor on the window so the delivery-rate estimator always has samples.
const BBR_MIN_CWND: f64 = 4.0;

/// The lifecycle phase of a [`BbrLite`] controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BbrPhase {
    /// Exponential growth until the bandwidth filter plateaus.
    Startup,
    /// Let the startup queue drain back to one BDP in flight.
    Drain,
    /// Steady state: cycle through [`BBR_PROBE_CYCLE`] gains.
    ProbeBw(usize),
}

/// Simplified deterministic BBR: a windowed-max delivery-rate filter and a
/// windowed-min RTT filter estimate the bottleneck BDP; the congestion
/// window is a phase-dependent gain multiple of it. There is no pacing in
/// this segment-clocked model, so the ProbeBW pacing-gain cycle modulates
/// the window instead. Losses are ignored (no halving); only an RTO
/// collapses the window, which then refills ACK-clocked to the target.
#[derive(Debug, Clone, Copy)]
pub struct BbrLite {
    cfg: CcConfig,
    cwnd: f64,
    ssthresh: f64,
    phase: BbrPhase,
    /// Windowed-max delivery rate, segments/second (0 until first sample).
    btl_bw: f64,
    btl_bw_at_ns: u64,
    /// Windowed-min RTT, seconds.
    min_rtt_s: f64,
    min_rtt_at_ns: u64,
    have_rtt: bool,
    /// Startup plateau detection.
    full_bw: f64,
    full_bw_rounds: u32,
    round_start_ns: u64,
    /// ProbeBW phase clock.
    cycle_start_ns: u64,
    /// Previous ACK arrival, for delivery-rate samples.
    last_ack_ns: u64,
    have_ack: bool,
}

impl BbrLite {
    /// A fresh BBR-lite controller.
    pub fn new(cfg: CcConfig) -> Self {
        Self {
            cfg,
            cwnd: cfg.initial_cwnd,
            ssthresh: cfg.max_wnd,
            phase: BbrPhase::Startup,
            btl_bw: 0.0,
            btl_bw_at_ns: 0,
            min_rtt_s: 0.0,
            min_rtt_at_ns: 0,
            have_rtt: false,
            full_bw: 0.0,
            full_bw_rounds: 0,
            round_start_ns: 0,
            cycle_start_ns: 0,
            last_ack_ns: 0,
            have_ack: false,
        }
    }

    /// Current phase (for tests and trace tooling).
    pub fn phase(&self) -> BbrPhase {
        self.phase
    }

    /// Estimated bottleneck bandwidth, segments/second.
    pub fn btl_bw(&self) -> f64 {
        self.btl_bw
    }

    /// Current min-RTT estimate, seconds (None before the first sample).
    pub fn min_rtt_s(&self) -> Option<f64> {
        self.have_rtt.then_some(self.min_rtt_s)
    }

    /// Estimated bandwidth-delay product, segments.
    pub fn bdp(&self) -> f64 {
        if self.have_rtt {
            self.btl_bw * self.min_rtt_s
        } else {
            0.0
        }
    }

    fn gain(&self) -> f64 {
        match self.phase {
            BbrPhase::Startup => BBR_STARTUP_GAIN,
            BbrPhase::Drain => 1.0,
            BbrPhase::ProbeBw(i) => BBR_CWND_GAIN * BBR_PROBE_CYCLE[i],
        }
    }

    fn min_cwnd(&self) -> f64 {
        self.cfg
            .initial_cwnd
            .max(BBR_MIN_CWND)
            .min(self.cfg.max_wnd)
    }

    fn target_cwnd(&self) -> f64 {
        let bdp = self.bdp();
        if bdp <= 0.0 {
            return self.min_cwnd();
        }
        (self.gain() * bdp).clamp(self.min_cwnd(), self.cfg.max_wnd)
    }
}

impl CcAlgo for BbrLite {
    fn kind(&self) -> CcKind {
        CcKind::BbrLite
    }
    fn cwnd(&self) -> f64 {
        self.cwnd
    }
    fn ssthresh(&self) -> f64 {
        self.ssthresh
    }
    fn on_ack(&mut self, ctx: &AckCtx) {
        let now = ctx.now_ns;
        // Delivery-rate sample: newly acked segments over the ACK spacing.
        // Application-limited stretches must not raise the max filter.
        if self.have_ack && now > self.last_ack_ns && ctx.newly_acked > 0 && ctx.cwnd_limited {
            let bw = ctx.newly_acked as f64 / ((now - self.last_ack_ns) as f64 / 1e9);
            let expired = (now - self.btl_bw_at_ns) as f64 / 1e9 > BBR_BW_WINDOW_S;
            if bw >= self.btl_bw || expired {
                self.btl_bw = bw;
                self.btl_bw_at_ns = now;
            }
        }
        self.last_ack_ns = now;
        self.have_ack = true;
        // Min-RTT filter with time-based expiry.
        if let Some(r) = ctx.rtt_sample_s {
            let expired =
                self.have_rtt && (now - self.min_rtt_at_ns) as f64 / 1e9 > BBR_MIN_RTT_WINDOW_S;
            if !self.have_rtt || r <= self.min_rtt_s || expired {
                self.min_rtt_s = r;
                self.min_rtt_at_ns = now;
                self.have_rtt = true;
            }
        }
        if self.have_rtt {
            let rtt_ns = (self.min_rtt_s * 1e9) as u64;
            // Round boundary: one window per min-RTT.
            if now - self.round_start_ns >= rtt_ns {
                self.round_start_ns = now;
                if self.phase == BbrPhase::Startup {
                    if self.btl_bw > self.full_bw * 1.25 {
                        self.full_bw = self.btl_bw;
                        self.full_bw_rounds = 0;
                    } else {
                        self.full_bw_rounds += 1;
                        if self.full_bw_rounds >= BBR_FULL_BW_ROUNDS {
                            self.phase = BbrPhase::Drain;
                        }
                    }
                }
            }
            // Drain exits as soon as the queue is back to one BDP.
            if self.phase == BbrPhase::Drain && (ctx.inflight as f64) <= self.bdp() {
                self.phase = BbrPhase::ProbeBw(0);
                self.cycle_start_ns = now;
            }
            // Advance the ProbeBW gain cycle once per min-RTT.
            if let BbrPhase::ProbeBw(i) = self.phase {
                if now - self.cycle_start_ns >= rtt_ns {
                    self.phase = BbrPhase::ProbeBw((i + 1) % BBR_PROBE_CYCLE.len());
                    self.cycle_start_ns = now;
                }
            }
        }
        // Move the window toward the target: shrink instantly, grow
        // ACK-clocked (at most `newly_acked` per ACK, BBR's refill rule).
        let target = self.target_cwnd();
        if self.cwnd < target {
            self.cwnd = (self.cwnd + ctx.newly_acked as f64).min(target);
        } else {
            self.cwnd = target;
        }
    }
    fn on_dupack_loss(&mut self) {
        // Loss-agnostic: note the event for traces, keep the model's window.
        self.ssthresh = self.cwnd;
    }
    fn on_dupack_inflate(&mut self) {}
    fn on_partial_ack(&mut self, _newly_acked: u64) {}
    fn on_exit_recovery(&mut self) {}
    fn on_rto(&mut self) {
        // Conservative collapse; the refill rule restores the target within
        // roughly one round trip of fresh ACKs.
        self.ssthresh = self.cwnd;
        self.cwnd = 1.0;
    }
    fn reset(&mut self) {
        *self = Self::new(self.cfg);
    }
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

/// Enum dispatch over the three algorithms: keeps the sender `Copy`-friendly
/// and `Debug`-printable (no trait objects) with static dispatch per arm.
#[derive(Debug, Clone, Copy)]
pub enum Cc {
    /// See [`Reno`].
    Reno(Reno),
    /// See [`Cubic`].
    Cubic(Cubic),
    /// See [`BbrLite`].
    BbrLite(BbrLite),
}

macro_rules! delegate {
    ($self:ident, $m:ident $(, $a:expr)*) => {
        match $self {
            Cc::Reno(x) => x.$m($($a),*),
            Cc::Cubic(x) => x.$m($($a),*),
            Cc::BbrLite(x) => x.$m($($a),*),
        }
    };
}

impl Cc {
    /// Instantiate the algorithm selected by `kind`.
    pub fn new(kind: CcKind, cfg: CcConfig) -> Self {
        match kind {
            CcKind::Reno => Cc::Reno(Reno::new(cfg)),
            CcKind::Cubic => Cc::Cubic(Cubic::new(cfg)),
            CcKind::BbrLite => Cc::BbrLite(BbrLite::new(cfg)),
        }
    }

    /// Force the slow-start threshold (test/diagnostic hook; lets unit tests
    /// drop a sender straight into congestion avoidance).
    #[doc(hidden)]
    pub fn set_ssthresh(&mut self, v: f64) {
        match self {
            Cc::Reno(x) => x.ssthresh = v,
            Cc::Cubic(x) => x.ssthresh = v,
            Cc::BbrLite(x) => x.ssthresh = v,
        }
    }
}

impl CcAlgo for Cc {
    fn kind(&self) -> CcKind {
        delegate!(self, kind)
    }
    fn cwnd(&self) -> f64 {
        delegate!(self, cwnd)
    }
    fn ssthresh(&self) -> f64 {
        delegate!(self, ssthresh)
    }
    fn on_ack(&mut self, ctx: &AckCtx) {
        delegate!(self, on_ack, ctx)
    }
    fn on_dupack_loss(&mut self) {
        delegate!(self, on_dupack_loss)
    }
    fn on_dupack_inflate(&mut self) {
        delegate!(self, on_dupack_inflate)
    }
    fn on_partial_ack(&mut self, newly_acked: u64) {
        delegate!(self, on_partial_ack, newly_acked)
    }
    fn on_exit_recovery(&mut self) {
        delegate!(self, on_exit_recovery)
    }
    fn on_rto(&mut self) {
        delegate!(self, on_rto)
    }
    fn pacing_window(&self) -> f64 {
        delegate!(self, pacing_window)
    }
    fn reset(&mut self) {
        delegate!(self, reset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CcConfig {
        CcConfig {
            initial_cwnd: 2.0,
            max_wnd: 10_000.0,
        }
    }

    fn limited(now_ns: u64, newly_acked: u64, rtt_s: f64) -> AckCtx {
        AckCtx {
            now_ns,
            newly_acked,
            rtt_sample_s: Some(rtt_s),
            srtt_s: Some(rtt_s),
            inflight: 0,
            cwnd_limited: true,
        }
    }

    // ---- Reno ----

    #[test]
    fn reno_matches_historic_arithmetic() {
        let mut r = Reno::new(cfg());
        r.ssthresh = 4.0;
        // Slow start: +1 per ACK until ssthresh.
        r.on_ack(&limited(0, 1, 0.1));
        assert_eq!(r.cwnd(), 3.0);
        r.on_ack(&limited(1, 1, 0.1));
        assert_eq!(r.cwnd(), 4.0);
        // CA: +1/cwnd.
        r.on_ack(&limited(2, 1, 0.1));
        assert_eq!(r.cwnd(), 4.25);
        // Loss: ssthresh = cwnd/2 (floor 2), cwnd = ssthresh + 3.
        r.on_dupack_loss();
        assert_eq!(r.ssthresh(), 2.125);
        assert_eq!(r.cwnd(), 5.125);
        r.on_dupack_inflate();
        assert_eq!(r.cwnd(), 6.125);
        r.on_partial_ack(3);
        assert_eq!(r.cwnd(), 4.125);
        r.on_exit_recovery();
        assert_eq!(r.cwnd(), 2.125);
        r.on_rto();
        assert_eq!(r.cwnd(), 1.0);
        assert_eq!(r.ssthresh(), 2.0);
    }

    #[test]
    fn reno_ignores_app_limited_acks() {
        let mut r = Reno::new(cfg());
        let mut ctx = limited(0, 1, 0.1);
        ctx.cwnd_limited = false;
        r.on_ack(&ctx);
        assert_eq!(r.cwnd(), 2.0, "app-limited ACK must not grow the window");
    }

    // ---- CUBIC ----

    /// Drive a CUBIC controller with a dense ACK clock after a loss at a
    /// known window and compare the trajectory against the closed-form
    /// `W(t)` curve at fixed epochs.
    #[test]
    fn cubic_tracks_closed_form_window_curve() {
        let mut c = Cubic::new(cfg());
        c.ssthresh = 2.0; // straight to CA
        c.cwnd = 100.0;
        c.on_dupack_loss(); // w_max = 100, cwnd = 70 + 3 (recovery entry)
        c.on_exit_recovery(); // cwnd = ssthresh = 70
        assert_eq!(c.w_max, 100.0);
        assert!((c.cwnd() - 70.0).abs() < 1e-9);

        // ACK clock: cwnd ACKs per RTT, srtt constant.
        let rtt_s = 0.1;
        let mut now_ns = 0u64;
        let expected_k = ((100.0 - 70.0) / CUBIC_C).cbrt(); // ≈ 4.217 s
        let mut checked = 0;
        while (now_ns as f64) < 2.5 * expected_k * 1e9 {
            let acks_per_rtt = c.cwnd().max(1.0) as u64;
            let step = (rtt_s * 1e9) as u64 / acks_per_rtt;
            c.on_ack(&limited(now_ns, 1, rtt_s));
            now_ns += step.max(1);
            // At selected epochs the window must match W(t) closely. The
            // per-ACK relaxation (target − cwnd)/cwnd converges within a few
            // RTTs, so allow a small tolerance.
            let t_s = now_ns as f64 / 1e9;
            for probe in [0.5, 1.0, 1.5, 2.0] {
                let epoch = probe * expected_k;
                if (t_s - epoch).abs() < rtt_s / 2.0 {
                    let w = c.w_cubic(t_s + rtt_s);
                    assert!(
                        (c.cwnd() - w).abs() / w < 0.06,
                        "t={t_s:.2}s cwnd={} vs W(t)={w}",
                        c.cwnd()
                    );
                    checked += 1;
                }
            }
        }
        assert!(checked >= 4, "probed {checked} epochs");
        assert_eq!(c.k, expected_k);
        // Past K the curve is convex: the window must have passed w_max.
        assert!(c.cwnd() > 100.0);
    }

    #[test]
    fn cubic_fast_convergence_shrinks_plateau() {
        let mut c = Cubic::new(cfg());
        c.ssthresh = 2.0;
        c.cwnd = 100.0;
        c.on_dupack_loss();
        assert_eq!(c.w_max, 100.0);
        c.on_exit_recovery();
        // Second loss below the old plateau: fast convergence kicks in.
        c.on_dupack_loss();
        let w = 70.0 * (2.0 - CUBIC_BETA) / 2.0;
        assert!((c.w_max - w).abs() < 1e-9, "w_max={} want {w}", c.w_max);
    }

    #[test]
    fn cubic_tcp_friendly_region_lower_bounds_growth() {
        let mut c = Cubic::new(cfg());
        c.ssthresh = 2.0;
        c.cwnd = 100.0;
        c.on_dupack_loss();
        c.on_exit_recovery();
        let w0 = c.cwnd();
        // Early in the epoch the cubic increment is tiny; the TCP-friendly
        // estimate still forces at least Reno-scale growth.
        let mut now = 0u64;
        for _ in 0..700 {
            c.on_ack(&limited(now, 1, 0.1));
            now += 1_430_000; // ≈ cwnd ACKs per 0.1 s RTT
        }
        let reno_rate = 3.0 * (1.0 - CUBIC_BETA) / (1.0 + CUBIC_BETA);
        assert!(
            c.cwnd() >= w0 + 0.9 * reno_rate,
            "after one RTT-second cwnd={} w0={w0}",
            c.cwnd()
        );
    }

    // ---- BBR-lite ----

    /// A synthetic steady ACK stream: `bw` segments/s delivered in bursts of
    /// `burst` every `burst/bw` seconds with a constant RTT.
    fn drive_bbr(
        b: &mut BbrLite,
        start_ns: u64,
        dur_s: f64,
        bw: f64,
        rtt_s: f64,
        inflight: u64,
    ) -> u64 {
        let burst = 2u64;
        let step_ns = (burst as f64 / bw * 1e9) as u64;
        let mut now = start_ns;
        let end = start_ns + (dur_s * 1e9) as u64;
        while now < end {
            let mut ctx = limited(now, burst, rtt_s);
            ctx.inflight = inflight;
            b.on_ack(&ctx);
            now += step_ns;
        }
        now
    }

    #[test]
    fn bbr_gain_cycle_progresses_deterministically() {
        let mut b = BbrLite::new(cfg());
        assert_eq!(b.phase(), BbrPhase::Startup);
        // Constant 1000 seg/s, 50 ms RTT → BDP = 50 segments.
        let t1 = drive_bbr(&mut b, 0, 1.0, 1000.0, 0.05, 100);
        assert_eq!(
            b.phase(),
            BbrPhase::Drain,
            "bandwidth plateaued for 3 rounds"
        );
        assert!((b.btl_bw() - 1000.0).abs() < 1.0);
        assert_eq!(b.min_rtt_s(), Some(0.05));
        // Inflight at one BDP ends Drain.
        let mut ctx = limited(t1, 2, 0.05);
        ctx.inflight = 10;
        b.on_ack(&ctx);
        assert_eq!(b.phase(), BbrPhase::ProbeBw(0));
        // The cycle advances one phase per min-RTT, deterministically.
        let mut seen = vec![0usize];
        let mut now = t1;
        for _ in 0..200 {
            now += 5_000_000; // 5 ms
            let mut c2 = limited(now, 2, 0.05);
            c2.inflight = 50;
            b.on_ack(&c2);
            if let BbrPhase::ProbeBw(i) = b.phase() {
                if *seen.last().unwrap() != i {
                    seen.push(i);
                }
            }
        }
        assert!(
            seen.starts_with(&[0, 1, 2, 3, 4, 5, 6, 7, 0]),
            "gain cycle must advance in order: {seen:?}"
        );
        // Steady state: cwnd tracks gain × BDP (cruise gain 2 × 50 = 100).
        assert!((b.bdp() - 50.0).abs() < 1.0, "bdp={}", b.bdp());
    }

    #[test]
    fn bbr_min_rtt_filter_expires() {
        let mut b = BbrLite::new(cfg());
        drive_bbr(&mut b, 0, 1.0, 1000.0, 0.05, 100);
        assert_eq!(b.min_rtt_s(), Some(0.05));
        // RTT rises to 80 ms; within the window the 50 ms min is sticky.
        let t = drive_bbr(&mut b, (1.0 * 1e9) as u64, 5.0, 1000.0, 0.08, 100);
        assert_eq!(b.min_rtt_s(), Some(0.05), "min-RTT sticky inside window");
        // Past the 10 s horizon the stale minimum expires to the live RTT.
        drive_bbr(&mut b, t + (6.0 * 1e9) as u64, 1.0, 1000.0, 0.08, 100);
        assert_eq!(b.min_rtt_s(), Some(0.08), "stale min-RTT must expire");
    }

    #[test]
    fn bbr_rto_collapses_then_refills() {
        let mut b = BbrLite::new(cfg());
        drive_bbr(&mut b, 0, 1.0, 1000.0, 0.05, 100);
        let w = b.cwnd();
        assert!(w > 10.0);
        b.on_rto();
        assert_eq!(b.cwnd(), 1.0);
        // Refill is ACK-clocked: each ACK grows by newly_acked up to target.
        let mut now = (1.0 * 1e9) as u64;
        let mut c = limited(now, 4, 0.05);
        c.inflight = 50;
        b.on_ack(&c);
        assert!(b.cwnd() <= 5.0);
        for _ in 0..100 {
            now += 2_000_000;
            c = limited(now, 4, 0.05);
            c.inflight = 50;
            b.on_ack(&c);
        }
        assert!(b.cwnd() > 10.0, "window refills after RTO: {}", b.cwnd());
    }

    #[test]
    fn bbr_app_limited_samples_do_not_raise_bw() {
        let mut b = BbrLite::new(cfg());
        drive_bbr(&mut b, 0, 1.0, 100.0, 0.05, 100);
        let bw = b.btl_bw();
        let mut ctx = limited((1.0 * 1e9) as u64 + 1000, 50, 0.05);
        ctx.cwnd_limited = false; // app-limited burst, absurdly high rate
        b.on_ack(&ctx);
        assert_eq!(b.btl_bw(), bw, "app-limited sample must be discarded");
    }

    // ---- dispatch ----

    #[test]
    fn dispatch_constructs_the_right_algorithm() {
        for kind in CcKind::all() {
            let c = Cc::new(kind, cfg());
            assert_eq!(c.kind(), kind);
            assert_eq!(c.cwnd(), 2.0);
            assert_eq!(c.pacing_window(), 2.0);
        }
        assert_eq!(CcKind::Reno.name(), "reno");
        assert_eq!(CcKind::Cubic.name(), "cubic");
        assert_eq!(CcKind::BbrLite.name(), "bbr-lite");
    }

    #[test]
    fn determinism_same_inputs_same_trajectory() {
        for kind in CcKind::all() {
            let mut a = Cc::new(kind, cfg());
            let mut b = Cc::new(kind, cfg());
            let mut now = 0u64;
            for i in 0..500u64 {
                let ctx = limited(now, 1 + i % 3, 0.02 + (i % 7) as f64 * 0.001);
                a.on_ack(&ctx);
                b.on_ack(&ctx);
                if i % 97 == 0 {
                    a.on_dupack_loss();
                    b.on_dupack_loss();
                    a.on_exit_recovery();
                    b.on_exit_recovery();
                }
                now += 1_000_000 + (i % 5) * 300_000;
            }
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
    }
}
