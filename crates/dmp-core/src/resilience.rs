//! Resilience metrics: how a stream *experiences* a path-dynamics scenario.
//!
//! The average late fraction ([`crate::metrics`]) hides the structure of a
//! failure: a stream that is 2% late uniformly is watchable; a stream that is
//! perfect except for a 20-second freeze is not. These metrics expose that
//! structure:
//!
//! * **glitches** — maximal runs of consecutive late packets, i.e. playback
//!   stalls the viewer actually sees, with their count and durations;
//! * **worst window** — the highest late fraction over any sliding window of
//!   `window_s` seconds, the "how bad did it get" number;
//! * **time to recover** — for scripted failures at a known instant, how long
//!   until the stream is late-free again (and stays that way).

use crate::trace::DeliveryRecord;

/// Parameters for a resilience evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResilienceSpec {
    /// Startup delay τ in seconds; packet `i` is late iff it misses
    /// `gen_i + τ`.
    pub tau_s: f64,
    /// Sliding-window length for the worst-window late fraction, seconds.
    pub window_s: f64,
    /// When the scripted failure happened (same clock as `gen_ns`, in
    /// seconds), if the scenario has a designated failure to recover from.
    pub fail_at_s: Option<f64>,
}

impl Default for ResilienceSpec {
    fn default() -> Self {
        Self {
            tau_s: 4.0,
            window_s: 10.0,
            fail_at_s: None,
        }
    }
}

/// Resilience metrics computed from one delivery trace.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceReport {
    /// The τ the report was evaluated at, seconds.
    pub tau_s: f64,
    /// Number of glitches (maximal runs of consecutive late packets).
    pub glitch_count: u64,
    /// Total stalled time across all glitches, seconds.
    pub total_glitch_s: f64,
    /// Longest single glitch, seconds.
    pub max_glitch_s: f64,
    /// Highest late fraction over any `window_s` sliding window.
    pub worst_window_late: f64,
    /// Start of that worst window (generation clock), seconds.
    pub worst_window_start_s: f64,
    /// Seconds from the scripted failure to the end of the last glitch that
    /// starts at or after it. `None` when `fail_at_s` was not given, no
    /// glitch follows the failure, or the stream never recovers.
    pub time_to_recover_s: Option<f64>,
    /// True when the stream is late-free for the tail of the trace (no late
    /// packet in the final `window_s` of generation time).
    pub recovered: bool,
}

impl ResilienceReport {
    /// Evaluate `spec` over a trace's (stable) records. `rate_pps` is the
    /// video packet rate µ, used to convert packet runs into seconds.
    pub fn from_records(records: &[DeliveryRecord], rate_pps: f64, spec: ResilienceSpec) -> Self {
        let tau_ns = (spec.tau_s * 1e9) as u64;
        let slot_s = 1.0 / rate_pps;
        let is_late = |r: &DeliveryRecord| match r.arrival_ns {
            None => true,
            Some(a) => a > r.gen_ns + tau_ns,
        };

        // Glitches: maximal runs of consecutive late packets in playback
        // (sequence) order. Duration = generation span of the run + one
        // playback slot (a single late packet stalls for ~1/µ).
        let mut glitches: Vec<(f64, f64)> = Vec::new(); // (start_s, end_s)
        let mut run_start: Option<u64> = None;
        let mut run_end: u64 = 0;
        for r in records {
            if is_late(r) {
                run_start.get_or_insert(r.gen_ns);
                run_end = r.gen_ns;
            } else if let Some(s) = run_start.take() {
                glitches.push((s as f64 / 1e9, run_end as f64 / 1e9 + slot_s));
            }
        }
        if let Some(s) = run_start {
            glitches.push((s as f64 / 1e9, run_end as f64 / 1e9 + slot_s));
        }
        let total_glitch_s: f64 = glitches.iter().map(|(s, e)| e - s).sum();
        let max_glitch_s = glitches.iter().map(|(s, e)| e - s).fold(0.0, f64::max);

        // Worst sliding window, anchored at each packet's generation time.
        let win_ns = (spec.window_s * 1e9) as u64;
        let mut worst = 0.0_f64;
        let mut worst_start = 0.0_f64;
        let mut lo = 0usize;
        let mut late_in_win = 0u64;
        let late_flags: Vec<bool> = records.iter().map(is_late).collect();
        for hi in 0..records.len() {
            if late_flags[hi] {
                late_in_win += 1;
            }
            while records[hi].gen_ns - records[lo].gen_ns >= win_ns {
                if late_flags[lo] {
                    late_in_win -= 1;
                }
                lo += 1;
            }
            let frac = late_in_win as f64 / (hi - lo + 1) as f64;
            if frac > worst {
                worst = frac;
                worst_start = records[lo].gen_ns as f64 / 1e9;
            }
        }

        // Recovery: late-free over the final window of generation time.
        let recovered = match (records.last(), records.first()) {
            (Some(last), Some(_)) => {
                let tail_from = last.gen_ns.saturating_sub(win_ns);
                !records
                    .iter()
                    .rev()
                    .take_while(|r| r.gen_ns >= tail_from)
                    .any(is_late)
            }
            _ => true,
        };

        // Time to recover: from the scripted failure to the end of the last
        // glitch at/after it — only meaningful if the stream then stays
        // clean to the end of the trace.
        let time_to_recover_s = spec.fail_at_s.and_then(|fail_at| {
            if !recovered {
                return None;
            }
            glitches
                .iter()
                .filter(|(s, _)| *s >= fail_at - slot_s)
                .map(|(_, e)| e - fail_at)
                .fold(None, |acc: Option<f64>, t| {
                    Some(acc.map_or(t, |a| a.max(t)))
                })
        });

        Self {
            tau_s: spec.tau_s,
            glitch_count: glitches.len() as u64,
            total_glitch_s,
            max_glitch_s,
            worst_window_late: worst,
            worst_window_start_s: worst_start,
            time_to_recover_s,
            recovered,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::VideoSpec;
    use crate::trace::StreamTrace;

    /// 10 pkt/s trace; packets listed in `late` arrive 10 s after generation
    /// (late for any τ < 10), the rest 0.1 s after.
    fn trace_with_late(n: u64, late: &[u64]) -> StreamTrace {
        let mut t = StreamTrace::new(VideoSpec::new(10.0), u64::MAX);
        for i in 0..n {
            t.on_generated(i, i * 100_000_000);
        }
        for i in 0..n {
            let delay = if late.contains(&i) {
                10_000_000_000
            } else {
                100_000_000
            };
            t.on_arrival(i, i * 100_000_000 + delay, 0);
        }
        t
    }

    #[test]
    fn clean_trace_has_no_glitches_and_recovers() {
        let t = trace_with_late(200, &[]);
        let r = ResilienceReport::from_records(t.records(), 10.0, ResilienceSpec::default());
        assert_eq!(r.glitch_count, 0);
        assert_eq!(r.total_glitch_s, 0.0);
        assert_eq!(r.worst_window_late, 0.0);
        assert!(r.recovered);
        assert_eq!(r.time_to_recover_s, None);
    }

    #[test]
    fn consecutive_late_packets_form_one_glitch() {
        // Packets 50..80 late: one glitch, 3 s of generation span + 1 slot.
        let late: Vec<u64> = (50..80).collect();
        let t = trace_with_late(300, &late);
        let r = ResilienceReport::from_records(t.records(), 10.0, ResilienceSpec::default());
        assert_eq!(r.glitch_count, 1);
        assert!((r.max_glitch_s - 3.0).abs() < 0.11, "{}", r.max_glitch_s);
        assert!(r.recovered);
    }

    #[test]
    fn separated_late_runs_count_separately() {
        let late: Vec<u64> = (20..25).chain(60..70).collect();
        let t = trace_with_late(200, &late);
        let r = ResilienceReport::from_records(t.records(), 10.0, ResilienceSpec::default());
        assert_eq!(r.glitch_count, 2);
        assert!((r.max_glitch_s - 1.0).abs() < 0.11);
        assert!((r.total_glitch_s - 1.5).abs() < 0.25);
    }

    #[test]
    fn worst_window_finds_the_dense_patch() {
        // 100 s of traffic; 40..90 late → within a 10 s window starting at
        // 4 s in, all 100 packets are late.
        let late: Vec<u64> = (40..140).collect();
        let t = trace_with_late(1000, &late);
        let r = ResilienceReport::from_records(t.records(), 10.0, ResilienceSpec::default());
        assert!(
            (r.worst_window_late - 1.0).abs() < 1e-9,
            "{}",
            r.worst_window_late
        );
        assert!(
            (4.0..=5.1).contains(&r.worst_window_start_s),
            "{}",
            r.worst_window_start_s
        );
    }

    #[test]
    fn time_to_recover_measures_from_the_failure() {
        // Failure scripted at t = 5 s; glitch spans packets 50..130
        // (5 s .. 13 s), so recovery ≈ 8 s after the failure.
        let late: Vec<u64> = (50..130).collect();
        let t = trace_with_late(400, &late);
        let spec = ResilienceSpec {
            fail_at_s: Some(5.0),
            ..ResilienceSpec::default()
        };
        let r = ResilienceReport::from_records(t.records(), 10.0, spec);
        assert!(r.recovered);
        let ttr = r.time_to_recover_s.expect("should have recovered");
        assert!((ttr - 8.0).abs() < 0.2, "{ttr}");
    }

    #[test]
    fn unrecovered_stream_reports_none() {
        // Late through the end of the trace.
        let late: Vec<u64> = (100..200).collect();
        let t = trace_with_late(200, &late);
        let spec = ResilienceSpec {
            fail_at_s: Some(10.0),
            ..ResilienceSpec::default()
        };
        let r = ResilienceReport::from_records(t.records(), 10.0, spec);
        assert!(!r.recovered);
        assert_eq!(r.time_to_recover_s, None);
    }

    #[test]
    fn empty_records_are_clean() {
        let r = ResilienceReport::from_records(&[], 10.0, ResilienceSpec::default());
        assert_eq!(r.glitch_count, 0);
        assert!(r.recovered);
    }
}
