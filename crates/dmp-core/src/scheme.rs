//! Server-side packet schedulers and the client-side reorder buffer.
//!
//! These types capture the *logic* of the schemes; the event loops that drive
//! them live in `dmp-sim` (discrete-event time) and `dmp-live` (tokio).

use std::collections::{BTreeMap, VecDeque};

/// One video packet as it moves through the system: a stream sequence number
/// (its position, and therefore its playback instant) plus the time it was
/// generated at the server, in nanoseconds of the backend's clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamPacket {
    /// Position in the stream, starting from 0. Packet `seq` plays back at
    /// `t₀ + seq/µ + τ`.
    pub seq: u64,
    /// Generation timestamp in nanoseconds.
    pub gen_ns: u64,
}

/// The DMP-streaming server queue: a single FIFO of generated-but-unsent
/// packets, shared by all TCP senders.
///
/// Packets with earlier playback times sit at the head. A sender that can
/// accept data takes the lock and drains from the head until it is full
/// ([`DynamicQueue::pull`]); this is the entire scheduling policy of
/// DMP-streaming.
#[derive(Debug, Default, Clone)]
pub struct DynamicQueue {
    q: VecDeque<StreamPacket>,
    total_generated: u64,
}

impl DynamicQueue {
    /// Create an empty server queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a freshly generated packet (called once per `1/µ` seconds by
    /// the video source).
    pub fn push(&mut self, pkt: StreamPacket) {
        self.total_generated += 1;
        self.q.push_back(pkt);
    }

    /// A sender with `space` free slots in its send buffer takes the lock and
    /// fetches packets from the head of the queue. Returns the packets
    /// fetched (at most `space`, fewer if the queue runs dry).
    pub fn pull(&mut self, space: usize) -> Vec<StreamPacket> {
        let n = space.min(self.q.len());
        self.q.drain(..n).collect()
    }

    /// Fetch a single packet from the head of the queue. The allocation-free
    /// counterpart of [`pull`](Self::pull) for per-packet consumers (the
    /// simulator's DMP server pulls this way so its steady state never
    /// touches the heap).
    pub fn pull_one(&mut self) -> Option<StreamPacket> {
        self.q.pop_front()
    }

    /// Peek at the next packet without removing it.
    pub fn peek(&self) -> Option<&StreamPacket> {
        self.q.front()
    }

    /// Packets currently waiting in the queue.
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// True when no packet is waiting.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// Total number of packets ever generated into this queue.
    pub fn total_generated(&self) -> u64 {
        self.total_generated
    }
}

/// The static-streaming baseline: packets are assigned to paths ahead of
/// time, in proportion to fixed weights (long-term average path bandwidths,
/// measured beforehand). With equal weights over two paths this is the
/// odd/even split the paper analyses.
///
/// Each path gets its own unbounded server-side queue; a path's sender only
/// ever pulls from its own queue, so a congested path cannot shed load onto
/// the others — exactly the weakness Section 7.4 quantifies.
#[derive(Debug, Clone)]
pub struct StaticSplitter {
    weights: Vec<f64>,
    /// Weighted-round-robin deficit counters.
    credit: Vec<f64>,
    queues: Vec<VecDeque<StreamPacket>>,
    assigned: Vec<u64>,
}

impl StaticSplitter {
    /// Create a splitter for `weights.len()` paths. Weights must be positive;
    /// they are normalised internally.
    ///
    /// # Panics
    /// Panics if `weights` is empty or contains a non-positive weight.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "at least one path required");
        assert!(weights.iter().all(|&w| w > 0.0), "weights must be positive");
        let sum: f64 = weights.iter().sum();
        let weights: Vec<f64> = weights.iter().map(|w| w / sum).collect();
        let n = weights.len();
        Self {
            weights,
            credit: vec![0.0; n],
            queues: vec![VecDeque::new(); n],
            assigned: vec![0; n],
        }
    }

    /// Number of paths.
    pub fn paths(&self) -> usize {
        self.weights.len()
    }

    /// Assign a freshly generated packet to a path (weighted round-robin:
    /// the path with the largest accumulated credit receives it). Returns the
    /// chosen path index.
    pub fn push(&mut self, pkt: StreamPacket) -> usize {
        for (c, w) in self.credit.iter_mut().zip(&self.weights) {
            *c += w;
        }
        let k = self
            .credit
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("credits are finite"))
            .map(|(i, _)| i)
            .expect("non-empty");
        self.credit[k] -= 1.0;
        self.queues[k].push_back(pkt);
        self.assigned[k] += 1;
        k
    }

    /// A sender on path `k` with `space` free slots pulls from *its own*
    /// queue only.
    pub fn pull(&mut self, k: usize, space: usize) -> Vec<StreamPacket> {
        let q = &mut self.queues[k];
        let n = space.min(q.len());
        q.drain(..n).collect()
    }

    /// Fetch a single packet assigned to path `k` (allocation-free
    /// counterpart of [`pull`](Self::pull)).
    pub fn pull_one(&mut self, k: usize) -> Option<StreamPacket> {
        self.queues[k].pop_front()
    }

    /// Peek at the next packet assigned to path `k` without removing it.
    pub fn peek(&self, k: usize) -> Option<&StreamPacket> {
        self.queues[k].front()
    }

    /// Assign a packet to an explicitly chosen path, bypassing the
    /// weighted-round-robin credit counters (used by the non-default pull
    /// strategies, which make their own placement decisions).
    pub fn assign(&mut self, k: usize, pkt: StreamPacket) {
        self.queues[k].push_back(pkt);
        self.assigned[k] += 1;
    }

    /// Packets waiting for path `k`.
    pub fn queued(&self, k: usize) -> usize {
        self.queues[k].len()
    }

    /// Total packets ever assigned to path `k`.
    pub fn assigned(&self, k: usize) -> u64 {
        self.assigned[k]
    }
}

/// Client-side reassembly: merges the per-path in-order TCP byte streams back
/// into a single stream ordered by sequence number, tracking duplicates.
///
/// `pop_ready` yields packets in strict sequence order (what a player
/// consuming by playback position would read); `drain_arrival_order` is used
/// by the "play back in arrival order" analysis of Section 4.1.
#[derive(Debug, Default)]
pub struct ReorderBuffer {
    next_seq: u64,
    pending: BTreeMap<u64, StreamPacket>,
    duplicates: u64,
}

impl ReorderBuffer {
    /// Create a buffer expecting sequence numbers from 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a packet received from any path. Returns `true` if it was new,
    /// `false` if it was a duplicate (already delivered or already pending).
    pub fn insert(&mut self, pkt: StreamPacket) -> bool {
        if pkt.seq < self.next_seq || self.pending.contains_key(&pkt.seq) {
            self.duplicates += 1;
            return false;
        }
        self.pending.insert(pkt.seq, pkt);
        true
    }

    /// Remove and return the next in-sequence packet, if it has arrived.
    pub fn pop_ready(&mut self) -> Option<StreamPacket> {
        let pkt = self.pending.remove(&self.next_seq)?;
        self.next_seq += 1;
        Some(pkt)
    }

    /// Sequence number the player is waiting for.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Packets received out of order and still waiting for a gap to fill.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Duplicate packets seen so far.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(seq: u64) -> StreamPacket {
        StreamPacket {
            seq,
            gen_ns: seq * 1_000,
        }
    }

    #[test]
    fn dynamic_queue_pull_respects_space_and_order() {
        let mut q = DynamicQueue::new();
        for i in 0..5 {
            q.push(pkt(i));
        }
        let got = q.pull(3);
        assert_eq!(got.iter().map(|p| p.seq).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(q.len(), 2);
        let got = q.pull(10);
        assert_eq!(got.len(), 2);
        assert!(q.is_empty());
        assert_eq!(q.total_generated(), 5);
    }

    #[test]
    fn dynamic_queue_pull_zero_is_noop() {
        let mut q = DynamicQueue::new();
        q.push(pkt(0));
        assert!(q.pull(0).is_empty());
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek().map(|p| p.seq), Some(0));
    }

    #[test]
    fn static_splitter_equal_weights_alternates() {
        let mut s = StaticSplitter::new(&[1.0, 1.0]);
        let paths: Vec<usize> = (0..6).map(|i| s.push(pkt(i))).collect();
        // Weighted round-robin with equal weights strictly alternates.
        assert_eq!(s.assigned(0), 3);
        assert_eq!(s.assigned(1), 3);
        for w in paths.windows(2) {
            assert_ne!(w[0], w[1]);
        }
    }

    #[test]
    fn static_splitter_respects_weights() {
        let mut s = StaticSplitter::new(&[3.0, 1.0]);
        for i in 0..4000 {
            s.push(pkt(i));
        }
        let share0 = s.assigned(0) as f64 / 4000.0;
        assert!((share0 - 0.75).abs() < 0.01, "share0 = {share0}");
    }

    #[test]
    fn static_splitter_pull_is_per_path() {
        let mut s = StaticSplitter::new(&[1.0, 1.0]);
        for i in 0..4 {
            s.push(pkt(i));
        }
        let a = s.pull(0, 10);
        let b = s.pull(1, 10);
        assert_eq!(a.len() + b.len(), 4);
        // Every packet appears exactly once across the two pulls.
        let mut seqs: Vec<u64> = a.iter().chain(&b).map(|p| p.seq).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "weights must be positive")]
    fn static_splitter_rejects_zero_weight() {
        StaticSplitter::new(&[1.0, 0.0]);
    }

    #[test]
    fn reorder_buffer_merges_two_paths() {
        let mut rb = ReorderBuffer::new();
        // Path A delivers 0, 2, 4; path B delivers 1, 3.
        assert!(rb.insert(pkt(0)));
        assert!(rb.insert(pkt(2)));
        assert_eq!(rb.pop_ready().map(|p| p.seq), Some(0));
        assert_eq!(rb.pop_ready(), None); // waiting for 1
        assert!(rb.insert(pkt(1)));
        assert_eq!(rb.pop_ready().map(|p| p.seq), Some(1));
        assert_eq!(rb.pop_ready().map(|p| p.seq), Some(2));
        assert!(rb.insert(pkt(4)));
        assert!(rb.insert(pkt(3)));
        assert_eq!(rb.pop_ready().map(|p| p.seq), Some(3));
        assert_eq!(rb.pop_ready().map(|p| p.seq), Some(4));
        assert_eq!(rb.duplicates(), 0);
    }

    #[test]
    fn reorder_buffer_counts_duplicates() {
        let mut rb = ReorderBuffer::new();
        assert!(rb.insert(pkt(0)));
        assert!(!rb.insert(pkt(0))); // pending duplicate
        rb.pop_ready();
        assert!(!rb.insert(pkt(0))); // already-delivered duplicate
        assert_eq!(rb.duplicates(), 2);
    }
}
