//! Core building blocks for **DMP-streaming** — Dynamic MPath-streaming of
//! live video over multiple TCP connections (Wang, Wei, Guo, Towsley,
//! *Multipath Live Streaming via TCP*, CoNEXT 2007).
//!
//! This crate is runtime-agnostic: it contains the pieces of the scheme that
//! are shared between the discrete-event simulation (`dmp-sim`), the real
//! tokio implementation (`dmp-live`), and the analytical model (`tcp-model`):
//!
//! * [`spec`] — parameter types describing videos, paths, and experiments;
//! * [`scheme`] — the server-side packet schedulers (dynamic shared queue,
//!   static weighted splitter) and the client-side reorder buffer;
//! * [`trace`] — per-packet delivery traces recorded by either backend;
//! * [`metrics`] — the paper's performance metric (fraction of late packets),
//!   computed both in playback order and in arrival order;
//! * [`resilience`] — glitch/recovery metrics for fault-injection scenarios
//!   (glitch durations, worst-window late fraction, time to recover);
//! * [`fleet`] — fleet-level aggregation: per-session outcomes folded into
//!   sessions started/completed, aggregate goodput, glitch distributions,
//!   and the fraction of sessions meeting the 1.6× headroom rule;
//! * [`stats`] — small statistics helpers (means, confidence intervals).
//!
//! # The scheme in one paragraph
//!
//! The server generates constant-bit-rate video packets in real time and
//! appends them to a single *server queue*. Each of the `K` TCP senders, when
//! its socket send buffer has room, locks the queue and pulls packets from the
//! head until it can accept no more. Because a path with higher achievable
//! TCP throughput drains its send buffer faster, it pulls a larger share of
//! the stream — the scheme *implicitly* infers per-path bandwidth from TCP
//! backpressure, with no probing traffic. The client reassembles packets by
//! sequence number and plays them back after a startup delay `τ`; a packet
//! arriving after its playback instant is *late*.

#![warn(missing_docs)]

pub mod fleet;
pub mod metrics;
pub mod resilience;
pub mod scheme;
pub mod spec;
pub mod stats;
pub mod trace;

pub use fleet::{Distribution, FleetReport, SessionOutcome, HEADROOM_RULE};
pub use metrics::{buffer_occupancy, BufferOccupancy, LateFractions, LatenessReport};
pub use resilience::{ResilienceReport, ResilienceSpec};
pub use scheme::{DynamicQueue, ReorderBuffer, StaticSplitter, StreamPacket};
pub use spec::{PathSpec, SchedulerKind, VideoSpec};
pub use trace::{DeliveryRecord, StreamTrace};
