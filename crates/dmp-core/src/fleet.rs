//! Fleet-level metrics: what a CDN operator reads off a thousand-session
//! experiment.
//!
//! The paper's single-session verdicts (late fraction at a startup delay τ,
//! the 1.6× aggregate-throughput headroom rule of Section 7.3) only matter
//! operationally in aggregate: *how many* sessions met the rule, what the
//! glitch distribution looked like across the fleet, how much video the
//! whole system moved. This module folds per-session outcomes — produced by
//! any backend; `crates/fleet` is the first — into a [`FleetReport`].
//!
//! Everything here is deterministic arithmetic over the outcomes, so a
//! report is byte-stable whenever the outcomes are.

/// The headroom threshold of the paper's Section 7.3 rule of thumb: a
/// two-path DMP session whose aggregate achievable TCP throughput is at
/// least 1.6× the video bitrate performs as well as a single-path session
/// with 2× headroom.
pub const HEADROOM_RULE: f64 = 1.6;

/// What one fleet session did, as measured by a backend.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionOutcome {
    /// Global session index (stable across shard chunking choices).
    pub session: u32,
    /// Arrival time, seconds after the experiment starts.
    pub arrival_s: f64,
    /// Requested streaming duration (session hold time), seconds.
    pub hold_s: f64,
    /// The session arrived inside the experiment window and generated at
    /// least one packet.
    pub started: bool,
    /// The session generated its full packet budget before the window
    /// closed (departed rather than being truncated).
    pub completed: bool,
    /// Video packets generated.
    pub generated: u64,
    /// Video packets delivered to the client.
    pub delivered: u64,
    /// Fraction of packets late at the evaluation startup delay τ
    /// (playback order).
    pub late_fraction: f64,
    /// Number of playback glitches (maximal runs of consecutive late
    /// packets) at τ.
    pub glitch_count: u64,
    /// Aggregate achievable TCP throughput across the session's paths,
    /// divided by the video rate µ — the left-hand side of the 1.6× rule.
    pub headroom: f64,
}

/// Summary statistics of one per-session metric across the fleet.
///
/// This is the repo's **single** percentile implementation: every layer
/// that reports a p50/p90/p99 — fleet reports, trace post-processing in
/// `obs::report`, metric-snapshot rendering — funnels through either
/// [`Distribution::from_values`] (exact order statistics) or
/// [`Distribution::from_histogram`] (bucket reconstruction).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Distribution {
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (linear interpolation between order statistics).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
    /// Population standard deviation.
    pub stddev: f64,
}

impl Distribution {
    /// The all-zero distribution (what an empty sample reports).
    pub fn zero() -> Self {
        Self {
            mean: 0.0,
            p50: 0.0,
            p90: 0.0,
            p99: 0.0,
            max: 0.0,
            stddev: 0.0,
        }
    }

    /// Summarise `values` (need not be sorted). Returns all-zero for an
    /// empty slice.
    pub fn from_values(values: &[f64]) -> Self {
        if values.is_empty() {
            return Self::zero();
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("metric values are finite"));
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        let var = sorted.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / sorted.len() as f64;
        Self {
            mean,
            p50: percentile(&sorted, 0.50),
            p90: percentile(&sorted, 0.90),
            p99: percentile(&sorted, 0.99),
            max: *sorted.last().expect("non-empty"),
            stddev: var.max(0.0).sqrt(),
        }
    }

    /// Reconstruct a distribution from mergeable histogram state: exact
    /// `count`/`sum`/`sum_sq`/`min`/`max` moments plus ascending
    /// `(bucket_lo, bucket_hi, bucket_count)` triples (empty buckets may be
    /// omitted). Because every input is a sum or max over samples, two
    /// histograms merged in *any* order reconstruct the identical
    /// distribution — the property shard merges rely on.
    ///
    /// Percentiles interpolate linearly inside the bucket containing the
    /// rank (the same convention as [`from_values`](Self::from_values) uses
    /// between order statistics), clamped to the exact `[min, max]` range.
    pub fn from_histogram<I>(
        count: u64,
        sum: f64,
        sum_sq: f64,
        min: f64,
        max: f64,
        buckets: I,
    ) -> Self
    where
        I: IntoIterator<Item = (f64, f64, u64)>,
    {
        if count == 0 {
            return Self::zero();
        }
        let n = count as f64;
        let mean = sum / n;
        let var = (sum_sq / n) - mean * mean;
        let mut dist = Self {
            mean,
            p50: 0.0,
            p90: 0.0,
            p99: 0.0,
            max,
            stddev: var.max(0.0).sqrt(),
        };
        // Ranks on the same 0..count-1 scale `percentile` uses.
        let ranks = [0.50, 0.90, 0.99].map(|q| q * (n - 1.0));
        let mut out = [min; 3];
        let mut seen = 0u64;
        for (lo, hi, c) in buckets {
            if c == 0 {
                continue;
            }
            let first = seen as f64;
            let last = (seen + c - 1) as f64;
            for (slot, &rank) in out.iter_mut().zip(&ranks) {
                if rank >= first && rank <= last + 1.0 {
                    // Spread the bucket's samples evenly over [lo, hi).
                    let frac = ((rank - first) / c as f64).clamp(0.0, 1.0);
                    *slot = (lo + frac * (hi - lo)).clamp(min, max);
                }
            }
            seen += c;
        }
        dist.p50 = out[0];
        dist.p90 = out[1];
        dist.p99 = out[2];
        dist
    }
}

/// Linear-interpolation percentile of an ascending-sorted slice.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Aggregate verdict over a fleet of sessions.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Sessions in the spec (started or not).
    pub sessions: u64,
    /// Sessions that arrived inside the window and generated packets.
    pub started: u64,
    /// Started sessions that generated their full budget (clean departures).
    pub completed: u64,
    /// Total video packets generated across the fleet.
    pub generated: u64,
    /// Total video packets delivered across the fleet.
    pub delivered: u64,
    /// Aggregate goodput: delivered packets per second of experiment time.
    pub goodput_pps: f64,
    /// Late-fraction distribution across started sessions.
    pub late: Distribution,
    /// Glitch-count distribution across started sessions.
    pub glitches: Distribution,
    /// Headroom (σ_a/µ) distribution across started sessions.
    pub headroom: Distribution,
    /// Fraction of started sessions whose aggregate headroom meets
    /// [`HEADROOM_RULE`].
    pub headroom_ok: f64,
}

impl FleetReport {
    /// Fold per-session outcomes (any order) into the fleet verdict.
    /// `duration_s` is the experiment window the goodput is normalised by.
    pub fn from_outcomes(outcomes: &[SessionOutcome], duration_s: f64) -> Self {
        let started: Vec<&SessionOutcome> = outcomes.iter().filter(|o| o.started).collect();
        let collect =
            |f: fn(&SessionOutcome) -> f64| -> Vec<f64> { started.iter().map(|o| f(o)).collect() };
        let generated = outcomes.iter().map(|o| o.generated).sum::<u64>();
        let delivered = outcomes.iter().map(|o| o.delivered).sum::<u64>();
        let headroom_ok = if started.is_empty() {
            0.0
        } else {
            started
                .iter()
                .filter(|o| o.headroom >= HEADROOM_RULE)
                .count() as f64
                / started.len() as f64
        };
        FleetReport {
            sessions: outcomes.len() as u64,
            started: started.len() as u64,
            completed: started.iter().filter(|o| o.completed).count() as u64,
            generated,
            delivered,
            goodput_pps: if duration_s > 0.0 {
                delivered as f64 / duration_s
            } else {
                0.0
            },
            late: Distribution::from_values(&collect(|o| o.late_fraction)),
            glitches: Distribution::from_values(&collect(|o| o.glitch_count as f64)),
            headroom: Distribution::from_values(&collect(|o| o.headroom)),
            headroom_ok,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(session: u32, started: bool, headroom: f64, late: f64) -> SessionOutcome {
        SessionOutcome {
            session,
            arrival_s: session as f64,
            hold_s: 10.0,
            started,
            completed: started,
            generated: if started { 100 } else { 0 },
            delivered: if started { 99 } else { 0 },
            late_fraction: late,
            glitch_count: 1,
            headroom,
        }
    }

    #[test]
    fn report_counts_and_fractions() {
        let outcomes = [
            outcome(0, true, 2.0, 0.0),
            outcome(1, true, 1.0, 0.5),
            outcome(2, false, 0.0, 0.0),
            outcome(3, true, 1.7, 0.1),
        ];
        let r = FleetReport::from_outcomes(&outcomes, 100.0);
        assert_eq!(r.sessions, 4);
        assert_eq!(r.started, 3);
        assert_eq!(r.completed, 3);
        assert_eq!(r.generated, 300);
        assert_eq!(r.delivered, 297);
        assert!((r.goodput_pps - 2.97).abs() < 1e-12);
        // 2 of 3 started sessions meet the 1.6× rule.
        assert!((r.headroom_ok - 2.0 / 3.0).abs() < 1e-12);
        assert!((r.late.max - 0.5).abs() < 1e-12);
    }

    #[test]
    fn distribution_of_empty_and_singleton() {
        let d = Distribution::from_values(&[]);
        assert_eq!(d.mean, 0.0);
        assert_eq!(d.max, 0.0);
        let d = Distribution::from_values(&[3.5]);
        assert_eq!(d.mean, 3.5);
        assert_eq!(d.p50, 3.5);
        assert_eq!(d.p90, 3.5);
        assert_eq!(d.max, 3.5);
    }

    #[test]
    fn percentiles_interpolate() {
        let d = Distribution::from_values(&[4.0, 1.0, 2.0, 3.0]);
        assert!((d.p50 - 2.5).abs() < 1e-12);
        assert!((d.p90 - 3.7).abs() < 1e-12);
        assert!((d.p99 - 3.97).abs() < 1e-12);
        assert_eq!(d.max, 4.0);
        // Population stddev of {1,2,3,4}: sqrt(1.25).
        assert!((d.stddev - 1.25f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn histogram_reconstruction_matches_exact_moments() {
        // 10 samples of value 4 and 10 of value 12, in two buckets.
        let buckets = [(4.0, 5.0, 10u64), (8.0, 16.0, 10u64)];
        let sum = 10.0 * 4.0 + 10.0 * 12.0;
        let sum_sq = 10.0 * 16.0 + 10.0 * 144.0;
        let d = Distribution::from_histogram(20, sum, sum_sq, 4.0, 12.0, buckets);
        assert!((d.mean - 8.0).abs() < 1e-12);
        assert!((d.stddev - 4.0).abs() < 1e-12);
        assert_eq!(d.max, 12.0);
        // p50 rank 9.5 falls in the first bucket's tail, clamped to min.
        assert!(d.p50 >= 4.0 && d.p50 <= 5.0, "p50 {}", d.p50);
        // p99 rank 18.8 falls deep in the second bucket.
        assert!(d.p99 > 8.0 && d.p99 <= 12.0, "p99 {}", d.p99);
        assert_eq!(
            Distribution::from_histogram(0, 0.0, 0.0, 0.0, 0.0, []),
            Distribution::zero()
        );
    }

    #[test]
    fn histogram_reconstruction_is_merge_order_invariant() {
        // The same total histogram assembled as A+B and B+A (bucket counts
        // are sums, moments are sums/maxes) must reconstruct identically.
        let total = [(0.0, 1.0, 3u64), (1.0, 2.0, 5u64), (2.0, 4.0, 2u64)];
        let sum = 0.5 * 3.0 + 1.5 * 5.0 + 3.0 * 2.0;
        let sum_sq = 0.25 * 3.0 + 2.25 * 5.0 + 9.0 * 2.0;
        let a = Distribution::from_histogram(10, sum, sum_sq, 0.2, 3.5, total);
        let b = Distribution::from_histogram(10, sum, sum_sq, 0.2, 3.5, total.to_vec());
        assert_eq!(a, b);
    }

    #[test]
    fn all_unstarted_fleet_is_zeroes_not_nan() {
        let outcomes = [outcome(0, false, 0.0, 0.0)];
        let r = FleetReport::from_outcomes(&outcomes, 50.0);
        assert_eq!(r.started, 0);
        assert_eq!(r.headroom_ok, 0.0);
        assert!(r.late.mean == 0.0 && !r.late.mean.is_nan());
    }
}
