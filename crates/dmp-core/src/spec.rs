//! Parameter types shared by the simulator, the live implementation, and the
//! analytical model.

/// A constant-bit-rate video, described the way the paper does: a playback
/// rate `µ` in packets per second and a fixed packet size.
///
/// The paper uses 1500-byte packets in simulation and 1448-byte packets on
/// the Internet (a full Ethernet segment minus TCP/IP headers).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VideoSpec {
    /// Playback (= generation) rate µ, in packets per second.
    pub rate_pps: f64,
    /// Payload size of every packet, in bytes.
    pub packet_bytes: u32,
}

impl VideoSpec {
    /// A video streaming `rate_pps` packets per second of 1500-byte packets.
    pub fn new(rate_pps: f64) -> Self {
        Self {
            rate_pps,
            packet_bytes: 1500,
        }
    }

    /// Video bitrate in bits per second (`µ × packet size × 8`).
    pub fn bitrate_bps(&self) -> f64 {
        self.rate_pps * f64::from(self.packet_bytes) * 8.0
    }

    /// Inter-packet generation gap in seconds (`1/µ`).
    pub fn gen_interval_s(&self) -> f64 {
        1.0 / self.rate_pps
    }
}

/// Steady-state TCP parameters of one network path, as the analytical model
/// sees it. These are the quantities reported in Tables 2 and 3 of the paper
/// and the knobs varied in Section 7.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathSpec {
    /// Packet loss probability `p` experienced by the TCP flow.
    pub loss: f64,
    /// Average round-trip time `R`, in seconds.
    pub rtt_s: f64,
    /// `T_O = R_TO / R`: the first retransmission timeout expressed as a
    /// multiple of the RTT. The paper uses values between 1 and 4.
    pub to_ratio: f64,
}

impl PathSpec {
    /// Construct a path from loss rate, RTT in milliseconds, and timeout
    /// ratio — the units used throughout the paper's tables.
    pub fn from_ms(loss: f64, rtt_ms: f64, to_ratio: f64) -> Self {
        Self {
            loss,
            rtt_s: rtt_ms / 1e3,
            to_ratio,
        }
    }

    /// The first retransmission timeout `R_TO` in seconds.
    pub fn rto_s(&self) -> f64 {
        self.to_ratio * self.rtt_s
    }
}

/// Which server-side packet-allocation scheme to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// DMP-streaming: one shared queue, senders pull when their send buffer
    /// has room (dynamic, backpressure-driven allocation).
    Dynamic,
    /// Static-streaming: packet `i` is assigned to a path ahead of time in
    /// proportion to the paths' long-term average bandwidths (round-robin for
    /// homogeneous paths), regardless of current conditions.
    Static,
    /// Single-path streaming (the `K = 1` baseline of the paper's Section 7.3
    /// discussion and of Wang et al. 2004).
    SinglePath,
}

impl SchedulerKind {
    /// Human-readable name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            SchedulerKind::Dynamic => "DMP-streaming",
            SchedulerKind::Static => "static-streaming",
            SchedulerKind::SinglePath => "single-path",
        }
    }
}

/// How a server decides which path serves the next queued packet — the
/// striping policy layered on top of a [`SchedulerKind`]'s queue structure.
/// `RoundRobin` is the paper's baseline (and byte-identical to the
/// historical hard-coded rotation); the others are extensions motivated by
/// preference-aware multipath striping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PullStrategy {
    /// The paper baseline: the rotation models which blocked sender wins the
    /// shared-queue lock first on each generation event.
    #[default]
    RoundRobin,
    /// Deficit-weighted striping: the path furthest behind its configured
    /// bandwidth share pulls first.
    Weighted,
    /// Greedy path quality: the path with the lowest smoothed RTT (ties
    /// broken by congestion-window headroom) pulls first.
    BestPath,
    /// The head packet is duplicated onto every path with buffer space; the
    /// client keeps the first copy to arrive. Burns bandwidth for latency.
    RedundantDuplicate,
    /// Earliest-deadline-first against the playout clock: queue order is
    /// already EDF (FIFO in generation order), and packets older than the
    /// pull deadline are dropped at the server instead of wasting path
    /// capacity on data that will miss playback anyway.
    DeadlineAware,
}

impl PullStrategy {
    /// Stable lowercase name used in trace events and artifact keys.
    pub fn name(&self) -> &'static str {
        match self {
            PullStrategy::RoundRobin => "round-robin",
            PullStrategy::Weighted => "weighted",
            PullStrategy::BestPath => "best-path",
            PullStrategy::RedundantDuplicate => "redundant-duplicate",
            PullStrategy::DeadlineAware => "deadline-aware",
        }
    }

    /// Every strategy, in canonical sweep order.
    pub fn all() -> [PullStrategy; 5] {
        [
            PullStrategy::RoundRobin,
            PullStrategy::Weighted,
            PullStrategy::BestPath,
            PullStrategy::RedundantDuplicate,
            PullStrategy::DeadlineAware,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn video_bitrate_matches_paper_examples() {
        // Paper: µ = 30/50/80 pkt/s at 1500 B → 360/600/960 kbps.
        for (mu, kbps) in [(30.0, 360.0), (50.0, 600.0), (80.0, 960.0)] {
            let v = VideoSpec::new(mu);
            assert!((v.bitrate_bps() / 1e3 - kbps).abs() < 1e-9);
        }
    }

    #[test]
    fn gen_interval_is_inverse_rate() {
        let v = VideoSpec::new(25.0);
        assert!((v.gen_interval_s() - 0.04).abs() < 1e-12);
    }

    #[test]
    fn path_spec_units() {
        let p = PathSpec::from_ms(0.02, 210.0, 1.6);
        assert!((p.rtt_s - 0.210).abs() < 1e-12);
        assert!((p.rto_s() - 0.336).abs() < 1e-12);
    }

    #[test]
    fn scheduler_names_are_distinct() {
        let names = [
            SchedulerKind::Dynamic.name(),
            SchedulerKind::Static.name(),
            SchedulerKind::SinglePath.name(),
        ];
        assert_ne!(names[0], names[1]);
        assert_ne!(names[1], names[2]);
    }

    #[test]
    fn pull_strategy_names_are_distinct_and_stable() {
        let all = PullStrategy::all();
        assert_eq!(all.len(), 5);
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a.name(), b.name());
            }
        }
        assert_eq!(PullStrategy::default(), PullStrategy::RoundRobin);
        assert_eq!(PullStrategy::RoundRobin.name(), "round-robin");
    }
}
