//! Small statistics helpers: online means/variances and Student-t confidence
//! intervals, used for the paper's "average over 30 runs with 95% CIs".

/// Online mean/variance accumulator (Welford's algorithm).
#[derive(Debug, Clone, Copy, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Half-width of the 95% confidence interval for the mean
    /// (`t · s / √n`; 0 with fewer than two observations).
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        t_quantile_975(self.n - 1) * self.std_dev() / (self.n as f64).sqrt()
    }

    /// `(mean, ci95 half-width)` convenience pair.
    pub fn mean_ci95(&self) -> (f64, f64) {
        (self.mean(), self.ci95_half_width())
    }
}

/// Summarise a slice of observations.
pub fn summarize(xs: &[f64]) -> OnlineStats {
    let mut s = OnlineStats::new();
    for &x in xs {
        s.push(x);
    }
    s
}

/// 97.5% quantile of the Student-t distribution with `df` degrees of freedom
/// (two-sided 95% interval). Tabulated for small `df`, 1.96 asymptotically.
pub fn t_quantile_975(df: u64) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    match df {
        0 => f64::INFINITY,
        1..=30 => TABLE[(df - 1) as usize],
        31..=40 => 2.021,
        41..=60 => 2.000,
        61..=120 => 1.980,
        _ => 1.96,
    }
}

/// Geometric mean of strictly positive values (0 if empty). Useful for
/// order-of-magnitude comparisons of late fractions.
pub fn geometric_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = xs.iter().map(|&x| x.max(f64::MIN_POSITIVE).ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_closed_form() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s = summarize(&xs);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample variance of this classic set is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn ci_is_zero_for_single_observation() {
        let s = summarize(&[42.0]);
        assert_eq!(s.ci95_half_width(), 0.0);
        assert_eq!(s.mean(), 42.0);
    }

    #[test]
    fn ci_shrinks_with_n() {
        let a = summarize(&[1.0, 2.0, 3.0, 4.0]);
        let xs: Vec<f64> = (0..40).map(|i| 1.0 + (i % 4) as f64).collect();
        let b = summarize(&xs);
        assert!(b.ci95_half_width() < a.ci95_half_width());
    }

    #[test]
    fn t_table_monotone_decreasing() {
        let mut prev = f64::INFINITY;
        for df in 1..200 {
            let t = t_quantile_975(df);
            assert!(t <= prev + 1e-12, "df={df}");
            prev = t;
        }
        assert!((t_quantile_975(1_000_000) - 1.96).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_basic() {
        assert!((geometric_mean(&[1.0, 100.0]) - 10.0).abs() < 1e-9);
        assert_eq!(geometric_mean(&[]), 0.0);
    }
}
