//! The paper's performance metric: the **fraction of late packets**.
//!
//! A packet is *late* when it arrives at the client after its playback
//! instant. With a startup delay `τ`, packet `i` (generated at `g_i`) plays
//! back at `g_i + τ`, so it is late iff `arrival_i > g_i + τ`.
//!
//! Section 4.1 also analyses playback **in arrival order** (the j-th packet
//! to arrive is played in the j-th playback slot); comparing the two
//! quantities is how Figures 4(a), 5(a) and 7(a) validate that out-of-order
//! arrivals across paths have a negligible effect.

use crate::trace::{DeliveryRecord, StreamTrace};

/// Late-packet fractions for one startup delay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LateFractions {
    /// Startup delay τ in seconds.
    pub tau_s: f64,
    /// Fraction of late packets when playing back by playback time
    /// (the "actual" fraction of late packets).
    pub playback_order: f64,
    /// Fraction of late packets when playing back in arrival order.
    pub arrival_order: f64,
    /// Number of packets considered.
    pub total: u64,
}

/// Lateness evaluated over a set of startup delays, from a single trace.
///
/// The sending side of live streaming never depends on τ (the server can only
/// send what it has generated), so one trace yields the late fraction for
/// every τ simultaneously — exactly how the paper's scatter plots evaluate
/// τ ∈ {4, 6, 8, 10} s from one set of runs.
#[derive(Debug, Clone)]
pub struct LatenessReport {
    /// One entry per requested τ, in the same order.
    pub per_tau: Vec<LateFractions>,
}

impl LatenessReport {
    /// Compute lateness for each startup delay in `taus_s` from a trace.
    /// Only "stable" records (generated long enough before the end of the
    /// run) are considered, so truncation does not bias the estimate.
    pub fn from_trace(trace: &StreamTrace, taus_s: &[f64]) -> Self {
        let max_tau = taus_s.iter().cloned().fold(0.0, f64::max);
        let records = trace.stable_records(max_tau);
        let per_tau = taus_s
            .iter()
            .map(|&tau| LateFractions {
                tau_s: tau,
                playback_order: late_fraction_playback(records, tau),
                arrival_order: late_fraction_arrival_order(records, trace.video().rate_pps, tau),
                total: records.len() as u64,
            })
            .collect();
        Self { per_tau }
    }

    /// The smallest of the evaluated startup delays whose playback-order late
    /// fraction is below `threshold`, if any.
    pub fn required_startup_delay(&self, threshold: f64) -> Option<f64> {
        self.per_tau
            .iter()
            .filter(|lf| lf.playback_order < threshold)
            .map(|lf| lf.tau_s)
            .fold(None, |acc, t| Some(acc.map_or(t, |a: f64| a.min(t))))
    }
}

/// Fraction of packets late under playback-time order: packet `i` is late iff
/// it never arrived or arrived after `gen_i + τ`.
pub fn late_fraction_playback(records: &[DeliveryRecord], tau_s: f64) -> f64 {
    if records.is_empty() {
        return 0.0;
    }
    let tau_ns = (tau_s * 1e9) as u64;
    let late = records
        .iter()
        .filter(|r| match r.arrival_ns {
            None => true,
            Some(a) => a > r.gen_ns + tau_ns,
        })
        .count();
    late as f64 / records.len() as f64
}

/// Fraction of packets late when the client plays packets **in the order they
/// arrive**: the j-th arrival is consumed in playback slot j, i.e. at
/// `t₀ + j/µ + τ` where `t₀` is the generation time of packet 0.
pub fn late_fraction_arrival_order(records: &[DeliveryRecord], rate_pps: f64, tau_s: f64) -> f64 {
    if records.is_empty() {
        return 0.0;
    }
    let t0 = records[0].gen_ns;
    let mut arrivals: Vec<u64> = records.iter().filter_map(|r| r.arrival_ns).collect();
    arrivals.sort_unstable();
    if arrivals.is_empty() {
        return 1.0;
    }
    let tau_ns = tau_s * 1e9;
    let slot_ns = 1e9 / rate_pps;
    // Packets that never arrived occupy no playback slot here, but they are
    // certainly late; count them against the total.
    let missing = records.len() - arrivals.len();
    let late = arrivals
        .iter()
        .enumerate()
        .filter(|(j, &a)| (a - t0) as f64 > *j as f64 * slot_ns + tau_ns)
        .count();
    (late + missing) as f64 / records.len() as f64
}

/// Client-buffer occupancy statistics for a startup delay τ: how many
/// packets sit in the client's buffer (arrived but not yet played). The
/// paper assumes the buffer is "sufficiently large"; this quantifies what
/// that means for a given trace — the maximum is the buffer a real client
/// must provision (§2: occupancy never exceeds µτ in live streaming, which
/// the unit tests assert).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BufferOccupancy {
    /// Peak number of packets buffered at once.
    pub peak_pkts: u64,
    /// Time-average number of packets buffered (sampled at event times).
    pub mean_pkts: f64,
}

/// Compute buffer occupancy for a trace at startup delay `tau_s`.
///
/// Occupancy(t) = arrivals(t) − playbacks(t), where packet `i` plays at
/// `gen_i + τ`. Evaluated by an event sweep over arrivals and playback
/// instants.
pub fn buffer_occupancy(records: &[DeliveryRecord], tau_s: f64) -> BufferOccupancy {
    let tau_ns = (tau_s * 1e9) as u64;
    // Events: +1 at each arrival, −1 at each playback instant (late packets
    // are played on arrival — they never occupy the buffer).
    let mut events: Vec<(u64, i64)> = Vec::with_capacity(records.len() * 2);
    for r in records {
        if let Some(a) = r.arrival_ns {
            let play = r.gen_ns + tau_ns;
            if a < play {
                events.push((a, 1));
                events.push((play, -1));
            }
        }
    }
    if events.is_empty() {
        return BufferOccupancy {
            peak_pkts: 0,
            mean_pkts: 0.0,
        };
    }
    events.sort_unstable();
    let mut level = 0i64;
    let mut peak = 0i64;
    let mut area = 0.0f64;
    let mut last_t = events[0].0;
    let t0 = events[0].0;
    for (t, d) in events {
        area += level as f64 * (t - last_t) as f64;
        last_t = t;
        level += d;
        peak = peak.max(level);
    }
    let span = (last_t - t0).max(1) as f64;
    BufferOccupancy {
        peak_pkts: peak as u64,
        mean_pkts: area / span,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::VideoSpec;

    /// Build a trace with 10 pkts/s where packet arrivals are given as
    /// (seq, delay in ms after generation) pairs; others never arrive.
    fn trace(arrivals: &[(u64, u64)], n: u64) -> StreamTrace {
        let mut t = StreamTrace::new(VideoSpec::new(10.0), 1_000_000_000_000);
        for i in 0..n {
            t.on_generated(i, i * 100_000_000);
        }
        for &(seq, delay_ms) in arrivals {
            let gen = seq * 100_000_000;
            t.on_arrival(seq, gen + delay_ms * 1_000_000, 0);
        }
        t
    }

    #[test]
    fn all_on_time_gives_zero() {
        let arrivals: Vec<(u64, u64)> = (0..50).map(|i| (i, 100)).collect();
        let t = trace(&arrivals, 50);
        assert_eq!(late_fraction_playback(t.records(), 1.0), 0.0);
        assert_eq!(late_fraction_arrival_order(t.records(), 10.0, 1.0), 0.0);
    }

    #[test]
    fn playback_order_counts_exactly_the_late_ones() {
        // Packet 3 arrives 2.5 s after generation; others 0.1 s.
        let mut arrivals: Vec<(u64, u64)> = (0..10).map(|i| (i, 100)).collect();
        arrivals[3] = (3, 2_500);
        let t = trace(&arrivals, 10);
        // τ = 1 s: only packet 3 is late.
        let f = late_fraction_playback(t.records(), 1.0);
        assert!((f - 0.1).abs() < 1e-12);
        // τ = 3 s: none late.
        assert_eq!(late_fraction_playback(t.records(), 3.0), 0.0);
    }

    #[test]
    fn missing_packets_are_late_in_both_orders() {
        let arrivals: Vec<(u64, u64)> = (0..9).map(|i| (i, 100)).collect();
        let t = trace(&arrivals, 10); // packet 9 never arrives
        assert!((late_fraction_playback(t.records(), 5.0) - 0.1).abs() < 1e-12);
        assert!((late_fraction_arrival_order(t.records(), 10.0, 5.0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn arrival_order_forgives_swaps_of_on_time_packets() {
        // Packets 0 and 1 arrive swapped but both early: in arrival order
        // neither is late (the paper's Case 1).
        let arrivals = [(1u64, 10u64), (0, 150)];
        let t = trace(&arrivals, 2);
        assert_eq!(late_fraction_arrival_order(t.records(), 10.0, 1.0), 0.0);
    }

    #[test]
    fn report_required_startup_delay() {
        let mut arrivals: Vec<(u64, u64)> = (0..100).map(|i| (i, 100)).collect();
        arrivals[7] = (7, 1_500); // needs τ ≥ 1.5 s
        let t = trace(&arrivals, 100);
        let rep = LatenessReport::from_trace(&t, &[1.0, 2.0, 4.0]);
        assert_eq!(rep.required_startup_delay(0.005), Some(2.0));
        assert_eq!(rep.required_startup_delay(0.5), Some(1.0));
    }

    #[test]
    fn empty_trace_is_not_late() {
        let t = StreamTrace::new(VideoSpec::new(10.0), 0);
        assert_eq!(late_fraction_playback(t.records(), 1.0), 0.0);
    }

    #[test]
    fn occupancy_counts_buffered_packets() {
        // 10 pkt/s; every packet arrives 50 ms after generation; τ = 1 s →
        // each packet buffered for 0.95 s; ~9-10 packets in flight at once.
        let arrivals: Vec<(u64, u64)> = (0..100).map(|i| (i, 50)).collect();
        let t = trace(&arrivals, 100);
        let occ = buffer_occupancy(t.records(), 1.0);
        assert!((9..=10).contains(&occ.peak_pkts), "peak {}", occ.peak_pkts);
        assert!(
            occ.mean_pkts > 7.0 && occ.mean_pkts < 10.5,
            "mean {}",
            occ.mean_pkts
        );
    }

    #[test]
    fn occupancy_never_exceeds_mu_tau_in_live_traces() {
        // §2.1: arrivals can't outrun generation, so occupancy ≤ µτ.
        let arrivals: Vec<(u64, u64)> = (0..200).map(|i| (i, (i % 7) * 30)).collect();
        let t = trace(&arrivals, 200);
        for tau in [0.5, 1.0, 3.0] {
            let occ = buffer_occupancy(t.records(), tau);
            let cap = (10.0 * tau).ceil() as u64;
            assert!(occ.peak_pkts <= cap, "τ={tau}: {} > {cap}", occ.peak_pkts);
        }
    }

    #[test]
    fn late_packets_do_not_occupy_the_buffer() {
        let arrivals: Vec<(u64, u64)> = (0..10).map(|i| (i, 5_000)).collect(); // all 5 s late
        let t = trace(&arrivals, 10);
        let occ = buffer_occupancy(t.records(), 1.0);
        assert_eq!(occ.peak_pkts, 0);
    }
}
