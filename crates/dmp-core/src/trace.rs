//! Per-packet delivery traces.
//!
//! Both backends (simulator and tokio implementation) record, for every video
//! packet, when it was generated and when the client application received it.
//! All of the paper's empirical metrics are computed from such traces.

use crate::spec::VideoSpec;

/// Delivery record for one video packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeliveryRecord {
    /// Stream sequence number (0-based).
    pub seq: u64,
    /// Generation time at the server, ns.
    pub gen_ns: u64,
    /// Arrival time at the client application (after in-order TCP delivery
    /// on its path), ns. `None` if the packet never arrived before the
    /// experiment ended.
    pub arrival_ns: Option<u64>,
    /// Index of the path that carried the packet.
    pub path: u8,
}

/// A complete delivery trace for one streaming run.
#[derive(Debug, Clone)]
pub struct StreamTrace {
    video: VideoSpec,
    records: Vec<DeliveryRecord>,
    /// End of the observation window, ns (used to discard the tail whose
    /// packets had no chance to arrive).
    end_ns: u64,
    /// Run label quoted in panic messages. Experiments run inside a worker
    /// pool with panic isolation; "which of the 120 jobs blew up" must be
    /// readable from the panic text alone.
    label: String,
}

impl StreamTrace {
    /// Create an empty trace for a run of the given video. `end_ns` is the
    /// experiment end time.
    pub fn new(video: VideoSpec, end_ns: u64) -> Self {
        // Reserve for the whole observation window up front (generation can
        // never outpace `rate_pps × end`): the per-packet push on the
        // steady-state path must not reallocate, both for throughput and for
        // the zero-allocation gate in `bench_profile`. Capacity is an upper
        // bound — generation usually starts after a warmup — and capacity
        // alone never changes a recorded byte.
        // Clamped: callers may pass `end_ns = u64::MAX` for an unbounded
        // trace, and a multi-hour window should grow normally rather than
        // reserve gigabytes up front.
        const MAX_RESERVE: usize = 1 << 22;
        let cap = ((video.rate_pps * (end_ns as f64 / 1e9)).ceil() as usize).saturating_add(1);
        let cap = cap.min(MAX_RESERVE);
        Self {
            video,
            records: Vec::with_capacity(cap),
            end_ns,
            label: String::new(),
        }
    }

    /// Tag the trace with a run label (quoted in panic messages).
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// The run label (empty if untagged).
    pub fn label(&self) -> &str {
        &self.label
    }

    fn label_for_panics(&self) -> &str {
        if self.label.is_empty() {
            "<unlabelled>"
        } else {
            &self.label
        }
    }

    /// Record the generation of packet `seq` at `gen_ns`. Records must be
    /// appended in sequence order.
    ///
    /// # Panics
    /// Panics if `seq` is not exactly the next expected sequence number.
    pub fn on_generated(&mut self, seq: u64, gen_ns: u64) {
        assert_eq!(
            seq as usize,
            self.records.len(),
            "generation out of order: got seq {seq}, expected seq {} (run {})",
            self.records.len(),
            self.label_for_panics()
        );
        self.records.push(DeliveryRecord {
            seq,
            gen_ns,
            arrival_ns: None,
            path: 0,
        });
    }

    /// Record the arrival of packet `seq` at the client via `path`.
    /// Later duplicates are ignored (first arrival wins).
    ///
    /// # Panics
    /// Panics if `seq` was never generated.
    pub fn on_arrival(&mut self, seq: u64, arrival_ns: u64, path: u8) {
        let generated = self.records.len();
        let label = if self.label.is_empty() {
            "<unlabelled>"
        } else {
            self.label.as_str()
        };
        let Some(rec) = self.records.get_mut(seq as usize) else {
            panic!(
                "arrival for ungenerated packet: got seq {seq}, \
                 only {generated} packets generated so far (run {label})"
            );
        };
        if rec.arrival_ns.is_none() {
            rec.arrival_ns = Some(arrival_ns);
            rec.path = path;
        }
    }

    /// The video this trace belongs to.
    pub fn video(&self) -> VideoSpec {
        self.video
    }

    /// All records, in sequence order.
    pub fn records(&self) -> &[DeliveryRecord] {
        &self.records
    }

    /// End of the observation window, ns.
    pub fn end_ns(&self) -> u64 {
        self.end_ns
    }

    /// Number of packets generated.
    pub fn generated(&self) -> u64 {
        self.records.len() as u64
    }

    /// Number of packets that arrived within the window.
    pub fn delivered(&self) -> u64 {
        self.records
            .iter()
            .filter(|r| r.arrival_ns.is_some())
            .count() as u64
    }

    /// Fraction of the delivered packets carried by each path. This is how
    /// we observe DMP's implicit bandwidth inference: the share should track
    /// the paths' achievable throughputs.
    pub fn path_shares(&self, paths: usize) -> Vec<f64> {
        let mut counts = vec![0u64; paths];
        let mut total = 0u64;
        for r in &self.records {
            if r.arrival_ns.is_some() {
                counts[r.path as usize] += 1;
                total += 1;
            }
        }
        if total == 0 {
            return vec![0.0; paths];
        }
        counts.iter().map(|&c| c as f64 / total as f64).collect()
    }

    /// Records restricted to packets generated early enough that a packet
    /// could still be `max_tau_s` late and be observed before the window end.
    /// Keeps lateness statistics unbiased by end-of-run truncation.
    pub fn stable_records(&self, max_tau_s: f64) -> &[DeliveryRecord] {
        let margin_ns = ((max_tau_s + 5.0) * 1e9) as u64;
        let cutoff = self.end_ns.saturating_sub(margin_ns);
        let n = self.records.partition_point(|r| r.gen_ns < cutoff);
        &self.records[..n]
    }
}

impl StreamTrace {
    /// Export the trace as CSV (`seq,gen_ns,arrival_ns,path`; empty
    /// `arrival_ns` for packets that never arrived) for external analysis
    /// or plotting.
    pub fn write_csv(&self, mut w: impl std::io::Write) -> std::io::Result<()> {
        writeln!(w, "seq,gen_ns,arrival_ns,path")?;
        for r in &self.records {
            match r.arrival_ns {
                Some(a) => writeln!(w, "{},{},{},{}", r.seq, r.gen_ns, a, r.path)?,
                None => writeln!(w, "{},{},,", r.seq, r.gen_ns)?,
            }
        }
        Ok(())
    }

    /// Parse a trace previously written by [`StreamTrace::write_csv`].
    /// `video` and `end_ns` are not stored in the CSV and must be supplied.
    pub fn read_csv(
        video: VideoSpec,
        end_ns: u64,
        r: impl std::io::BufRead,
    ) -> std::io::Result<Self> {
        let mut trace = StreamTrace::new(video, end_ns);
        let bad = |m: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, m.to_string());
        for (i, line) in r.lines().enumerate() {
            let line = line?;
            if i == 0 || line.trim().is_empty() {
                continue; // header / trailing newline
            }
            let mut f = line.split(',');
            let seq: u64 = f
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| bad("bad seq"))?;
            let gen_ns: u64 = f
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| bad("bad gen_ns"))?;
            trace.on_generated(seq, gen_ns);
            let arrival = f.next().ok_or_else(|| bad("missing arrival"))?;
            if !arrival.is_empty() {
                let a: u64 = arrival.parse().map_err(|_| bad("bad arrival_ns"))?;
                let path: u8 = f
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| bad("bad path"))?;
                trace.on_arrival(seq, a, path);
            }
        }
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> VideoSpec {
        VideoSpec::new(10.0) // 100 ms between packets
    }

    #[test]
    fn trace_records_generation_and_arrival() {
        let mut t = StreamTrace::new(spec(), 10_000_000_000);
        t.on_generated(0, 0);
        t.on_generated(1, 100_000_000);
        t.on_arrival(1, 250_000_000, 1);
        t.on_arrival(0, 300_000_000, 0);
        assert_eq!(t.generated(), 2);
        assert_eq!(t.delivered(), 2);
        assert_eq!(t.records()[1].path, 1);
    }

    #[test]
    fn first_arrival_wins() {
        let mut t = StreamTrace::new(spec(), 10_000_000_000);
        t.on_generated(0, 0);
        t.on_arrival(0, 200, 0);
        t.on_arrival(0, 100, 1);
        assert_eq!(t.records()[0].arrival_ns, Some(200));
        assert_eq!(t.records()[0].path, 0);
    }

    #[test]
    #[should_panic(expected = "generation out of order")]
    fn generation_must_be_sequential() {
        let mut t = StreamTrace::new(spec(), 1);
        t.on_generated(1, 0);
    }

    #[test]
    #[should_panic(expected = "got seq 3, expected seq 1 (run scn:failover:Dmp:run0)")]
    fn generation_panic_names_seqs_and_run() {
        let mut t = StreamTrace::new(spec(), 1).with_label("scn:failover:Dmp:run0");
        t.on_generated(0, 0);
        t.on_generated(3, 100);
    }

    #[test]
    #[should_panic(expected = "got seq 7, only 1 packets generated so far (run live:seed4)")]
    fn arrival_panic_names_seq_and_run() {
        let mut t = StreamTrace::new(spec(), 1).with_label("live:seed4");
        t.on_generated(0, 0);
        t.on_arrival(7, 50, 0);
    }

    #[test]
    #[should_panic(expected = "(run <unlabelled>)")]
    fn unlabelled_traces_say_so() {
        let mut t = StreamTrace::new(spec(), 1);
        t.on_arrival(0, 0, 0);
    }

    #[test]
    fn path_shares_sum_to_one() {
        let mut t = StreamTrace::new(spec(), 10_000_000_000);
        for i in 0..10 {
            t.on_generated(i, i * 100_000_000);
            t.on_arrival(i, i * 100_000_000 + 50, (i % 2) as u8);
        }
        let shares = t.path_shares(2);
        assert!((shares[0] - 0.5).abs() < 1e-12);
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn csv_round_trips() {
        let mut t = StreamTrace::new(spec(), 10_000_000_000);
        for i in 0..5 {
            t.on_generated(i, i * 100_000_000);
        }
        t.on_arrival(0, 120_000_000, 0);
        t.on_arrival(2, 450_000_000, 1);
        // packet 1, 3, 4 never arrive
        let mut csv = Vec::new();
        t.write_csv(&mut csv).unwrap();
        let back = StreamTrace::read_csv(spec(), 10_000_000_000, csv.as_slice()).unwrap();
        assert_eq!(back.records(), t.records());
        assert_eq!(back.delivered(), 2);
    }

    #[test]
    fn csv_rejects_garbage() {
        let res = StreamTrace::read_csv(spec(), 1, "seq,gen\nnot-a-number,0,,\n".as_bytes());
        assert!(res.is_err());
    }

    #[test]
    fn stable_records_drops_tail() {
        let mut t = StreamTrace::new(spec(), 20_000_000_000);
        for i in 0..200 {
            t.on_generated(i, i * 100_000_000);
        }
        // max τ = 4 s → margin 9 s → cutoff at 11 s → 110 packets kept.
        assert_eq!(t.stable_records(4.0).len(), 110);
    }
}
