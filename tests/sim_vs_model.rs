//! Cross-crate validation in the spirit of the paper's Section 5: run the
//! packet-level simulator, feed the measured path parameters into the
//! analytical model, and check that the two views of DMP-streaming agree on
//! ordering and rough magnitude. Also checks the simulator-level scheme
//! comparisons that the model claims (DMP ≥ static, multipath helps).

use dmp_core::spec::{PathSpec, SchedulerKind};
use dmp_sim::{run_batch, setting, ExperimentSpec};
use tcp_model::DmpModel;

fn batch(name: &str, scheduler: SchedulerKind, taus: &[f64]) -> dmp_sim::BatchOutput {
    let mut spec = ExperimentSpec::new(*setting(name).unwrap(), scheduler, 600.0, 41);
    spec.warmup_s = 15.0;
    run_batch(&spec, 4, taus)
}

#[test]
fn measured_parameters_look_like_table2() {
    let b = batch("2-2", SchedulerKind::Dynamic, &[]);
    for k in 0..2 {
        let p = b.loss[k].mean();
        let r = b.rtt[k].mean();
        let to = b.to_ratio[k].mean();
        assert!((0.003..0.08).contains(&p), "p_{k} = {p}");
        assert!((0.05..0.40).contains(&r), "R_{k} = {r}");
        assert!((1.2..4.5).contains(&to), "TO_{k} = {to}");
    }
    // Homogeneous paths: losses within a factor ~3 of each other on average.
    let ratio = b.loss[0].mean() / b.loss[1].mean();
    assert!((0.3..3.0).contains(&ratio), "path loss asymmetry {ratio}");
}

#[test]
fn sim_lateness_is_monotone_in_tau_and_model_tracks_it() {
    let taus = [3.0, 5.0, 8.0];
    let b = batch("2-2", SchedulerKind::Dynamic, &taus);
    let f: Vec<f64> = b.late_playback.iter().map(|(_, s)| s.mean()).collect();
    assert!(f[0] >= f[1] && f[1] >= f[2], "not monotone: {f:?}");
    assert!(f[0] > 0.0, "setting 2-2 must show some lateness at τ = 3 s");

    // Model at the measured parameters. The reconstruction is conservative
    // (it can over-predict lateness by up to about an order of magnitude at
    // comfortable throughput ratios — see EXPERIMENTS.md); we require the
    // paper's qualitative claim: same ordering, magnitudes within two orders.
    let paths: Vec<PathSpec> = (0..2)
        .map(|k| PathSpec {
            loss: b.loss[k].mean().max(1e-5),
            rtt_s: b.rtt[k].mean(),
            to_ratio: b.to_ratio[k].mean().max(1.0),
        })
        .collect();
    let video_mu = setting("2-2").unwrap().video.rate_pps;
    for (i, &tau) in taus.iter().enumerate() {
        let fm = DmpModel::new(paths.clone(), video_mu, tau)
            .late_fraction(400_000, 5)
            .f;
        if f[i] > 1e-3 {
            let ratio = fm / f[i];
            assert!(
                (0.01..=100.0).contains(&ratio),
                "τ={tau}: model {fm:.2e} vs sim {:.2e}",
                f[i]
            );
        }
    }
}

#[test]
fn out_of_order_effect_is_negligible_in_sim() {
    // The Section 4.1 assumption, checked on real simulation traces: playing
    // back in arrival order gives (nearly) the same late fraction.
    let taus = [3.0, 6.0];
    let b = batch("1-2", SchedulerKind::Dynamic, &taus);
    for (i, tau) in taus.iter().enumerate() {
        let fp = b.late_playback[i].1.mean();
        let fa = b.late_arrival[i].1.mean();
        if fp > 1e-3 {
            let ratio = fa / fp;
            assert!(
                (0.3..=1.5).contains(&ratio),
                "τ={tau}: arrival-order {fa:.2e} vs playback-order {fp:.2e}"
            );
        }
    }
}

#[test]
fn dmp_beats_static_in_the_simulator_too() {
    // Fig. 11 is a model result; verify the same ordering end-to-end in the
    // packet simulator on a congested setting.
    let taus = [2.0, 4.0, 6.0];
    let dynamic = batch("2-2", SchedulerKind::Dynamic, &taus);
    let static_ = batch("2-2", SchedulerKind::Static, &taus);
    let fd: f64 = dynamic.late_playback.iter().map(|(_, s)| s.mean()).sum();
    let fs: f64 = static_.late_playback.iter().map(|(_, s)| s.mean()).sum();
    assert!(
        fd <= fs * 1.3 + 1e-6,
        "dynamic (sum f = {fd:.3e}) should not lose clearly to static (sum f = {fs:.3e})"
    );
}

#[test]
fn dynamic_split_follows_capacity_in_heterogeneous_setting() {
    // Setting 1-3: path 2 uses config 3 (5 Mbps, 19 FTPs) vs config 1
    // (3.7 Mbps, 9 FTPs). Whatever the exact shares, DMP must keep both
    // paths in use and deliver the stream.
    let b = batch("1-3", SchedulerKind::Dynamic, &[6.0]);
    for k in 0..2 {
        let share = b.share[k].mean();
        assert!((0.15..0.85).contains(&share), "share_{k} = {share}");
    }
}
