//! The calibration contract between the two TCP implementations: the
//! analytical chain (`tcp-model`) must track the packet-level TCP
//! (`netsim`) under controlled, independent loss — this is what makes
//! feeding measured parameters into the model meaningful.

use dmp_core::spec::PathSpec;
use netsim::app::App;
use netsim::link::LinkSpec;
use netsim::sim::{Sim, SimApi};
use netsim::tcp::{SinkConfig, TcpConfig};
use netsim::SECOND;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use tcp_model::TcpChain;

struct Starter(u32);
impl App for Starter {
    fn start(&mut self, api: &mut SimApi<'_>) {
        api.set_backlogged(self.0, None);
    }
}

/// Backlogged netsim TCP over a Bernoulli-loss link: (throughput pps,
/// measured RTT s, measured T_O ratio).
fn netsim_throughput(p: f64, rtt_ms: f64, seconds: u64, seed: u64) -> (f64, f64, f64) {
    let mut sim = Sim::new(seed);
    let a = sim.add_node("a");
    let b = sim.add_node("b");
    let spec = LinkSpec::from_table(50.0, rtt_ms / 2.0, 4_000).with_random_loss(p);
    let fwd = sim.add_link(a, b, spec);
    let rev = sim.add_link(b, a, LinkSpec::from_table(50.0, rtt_ms / 2.0, 4_000));
    sim.add_route(a, b, fwd);
    sim.add_route(b, a, rev);
    let flow = sim.add_flow(a, b, TcpConfig::default(), SinkConfig::default());
    sim.add_app(Box::new(Starter(flow)));
    sim.run_until(seconds * SECOND);
    let pps = sim.sink(flow).stats.delivered as f64 / seconds as f64;
    let rtt = sim.sender(flow).rtt.mean_rtt_secs().expect("rtt samples");
    let to = sim.sender(flow).rtt.to_ratio().expect("rto samples");
    (pps, rtt, to)
}

#[test]
fn chain_tracks_packet_level_tcp_across_loss_rates() {
    let mut rng = SmallRng::seed_from_u64(99);
    for &(p, rtt_ms) in &[(0.005, 160.0), (0.02, 160.0), (0.05, 120.0)] {
        let (sim_pps, rtt_s, to) = netsim_throughput(p, rtt_ms, 2_000, 13);
        let chain_pps = TcpChain::achievable_throughput(
            PathSpec {
                loss: p,
                rtt_s,
                to_ratio: to,
            },
            64,
            400_000,
            &mut rng,
        );
        let ratio = chain_pps / sim_pps;
        assert!(
            (0.8..1.2).contains(&ratio),
            "p={p}: chain {chain_pps:.1} pps vs netsim {sim_pps:.1} pps (ratio {ratio:.2})"
        );
    }
}

#[test]
fn both_scale_inversely_with_rtt() {
    let (fast, _, _) = netsim_throughput(0.02, 80.0, 1_000, 21);
    let (slow, _, _) = netsim_throughput(0.02, 240.0, 1_000, 21);
    let ratio = fast / slow;
    assert!(
        (2.3..3.8).contains(&ratio),
        "3× RTT should cost ≈3× throughput: {ratio:.2}"
    );
}

#[test]
fn loss_hurts_both_in_the_padhye_way() {
    // Quadrupling p should roughly halve throughput (σ ∝ 1/√p region).
    let (lo, _, _) = netsim_throughput(0.01, 160.0, 1_500, 31);
    let (hi, _, _) = netsim_throughput(0.04, 160.0, 1_500, 31);
    let ratio = lo / hi;
    assert!(
        (1.6..3.2).contains(&ratio),
        "σ(p)/σ(4p) should be ≈2–2.5: {ratio:.2}"
    );
}
