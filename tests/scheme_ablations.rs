//! Ablations of the design choices DESIGN.md calls out, run end-to-end in
//! the packet simulator.

use dmp_core::spec::SchedulerKind;
use dmp_sim::{run, setting, ExperimentSpec};

fn spec_with(send_buf: usize, seed: u64) -> ExperimentSpec {
    let mut s = ExperimentSpec::new(
        *setting("2-2").unwrap(),
        SchedulerKind::Dynamic,
        300.0,
        seed,
    );
    s.warmup_s = 15.0;
    s.send_buf_pkts = send_buf;
    s
}

/// DMP's implicit inference relies on *finite* send buffers, but the paper
/// never tunes their size — the scheme should not be sensitive to it within
/// a sane range.
#[test]
fn send_buffer_size_is_not_critical() {
    let mut delivered = Vec::new();
    for &buf in &[8usize, 32, 128] {
        let out = run(&spec_with(buf, 99));
        delivered.push(out.trace.delivered() as f64 / out.trace.generated() as f64);
    }
    for (i, d) in delivered.iter().enumerate() {
        assert!(*d > 0.95, "send_buf index {i}: delivered fraction {d}");
    }
    let spread = delivered.iter().cloned().fold(f64::MIN, f64::max)
        - delivered.iter().cloned().fold(f64::MAX, f64::min);
    assert!(
        spread < 0.05,
        "delivery too sensitive to send buffer: {delivered:?}"
    );
}

/// A *huge* send buffer weakens the dynamic allocation (packets committed to
/// a path long before transmission). The delivered share split should become
/// closer to static even when one path is slower; with small buffers DMP
/// shifts load. This exercises the mechanism rather than asserting a strong
/// quantitative claim.
#[test]
fn small_buffers_shift_load_away_from_slow_path_faster() {
    // Heterogeneous 1-3 (different capacity classes).
    let run_with = |buf: usize| {
        let mut s = ExperimentSpec::new(*setting("1-3").unwrap(), SchedulerKind::Dynamic, 300.0, 7);
        s.warmup_s = 15.0;
        s.send_buf_pkts = buf;
        run(&s)
    };
    let small = run_with(8);
    let large = run_with(256);
    // Both must deliver; the small-buffer run must not do worse.
    let d_small = small.trace.delivered() as f64 / small.trace.generated() as f64;
    let d_large = large.trace.delivered() as f64 / large.trace.generated() as f64;
    assert!(d_small > 0.95 && d_large > 0.9, "{d_small} {d_large}");
}

/// Every delivered packet arrives exactly once at the client app (TCP
/// reliability end-to-end through the scheme: no duplicates, no holes below
/// the delivered horizon).
#[test]
fn exactly_once_delivery_through_the_scheme() {
    let out = run(&spec_with(32, 123));
    let mut seen = vec![false; out.trace.generated() as usize];
    for r in out.trace.records() {
        if r.arrival_ns.is_some() {
            assert!(!seen[r.seq as usize], "duplicate stream seq {}", r.seq);
            seen[r.seq as usize] = true;
        }
    }
    // Arrival times are never before generation.
    for r in out.trace.records() {
        if let Some(a) = r.arrival_ns {
            assert!(a >= r.gen_ns, "packet {} arrived before generation", r.seq);
        }
    }
}

/// The single-path baseline uses exactly one flow and (all else equal) can
/// only do worse than DMP over two such paths at the same bitrate.
#[test]
fn two_paths_help_at_the_same_bitrate() {
    let mut single = ExperimentSpec::new(
        *setting("2-2").unwrap(),
        SchedulerKind::SinglePath,
        300.0,
        5,
    );
    single.warmup_s = 15.0;
    let mut dual = single.clone();
    dual.scheduler = SchedulerKind::Dynamic;

    let out_single = run(&single);
    let out_dual = run(&dual);
    let frac = |o: &dmp_sim::RunOutput| o.trace.delivered() as f64 / o.trace.generated() as f64;
    // 600 kbps over ONE config-2 path is beyond its achievable throughput;
    // over two paths it fits.
    assert!(frac(&out_dual) > 0.97, "dual {}", frac(&out_dual));
    assert!(
        frac(&out_dual) >= frac(&out_single) - 0.01,
        "single {} vs dual {}",
        frac(&out_single),
        frac(&out_dual)
    );
}

/// Three paths end-to-end in the packet simulator (the paper's K > 2 future
/// work): a video too big for any two of the paths streams over three.
#[test]
fn three_paths_carry_what_two_cannot() {
    use dmp_core::spec::VideoSpec;
    use dmp_sim::topology::{attach_background, build_independent, video_tcp};
    use dmp_sim::video::{shared_trace, DmpServer, VideoClient};
    use netsim::{secs, Sim};

    let run_k = |k: usize| {
        let mut sim = Sim::new(17);
        let cfgs: Vec<_> = (0..k).map(|_| dmp_sim::config(2)).collect();
        let topo = build_independent(&mut sim, &cfgs, video_tcp(1500, 32));
        attach_background(&mut sim, &topo, &cfgs, 17);
        // 75 pkt/s = 900 kbps: more than two config-2 paths comfortably carry.
        let video = VideoSpec::new(75.0);
        let end = secs(220.0);
        let trace = shared_trace(video, end);
        let flows: Vec<_> = topo.paths.iter().map(|p| p.video_flow).collect();
        sim.add_app(Box::new(DmpServer::new(
            flows.clone(),
            video,
            trace.clone(),
            secs(15.0),
            (200.0 * video.rate_pps) as u64,
        )));
        sim.add_app(Box::new(VideoClient::new(&flows, trace.clone())));
        sim.run_until(end);
        let t = trace.borrow();
        let report = dmp_core::metrics::LatenessReport::from_trace(&t, &[8.0]);
        (
            t.delivered() as f64 / t.generated() as f64,
            report.per_tau[0].playback_order,
            t.path_shares(k),
        )
    };

    let (d2, f2, _) = run_k(2);
    let (d3, f3, shares3) = run_k(3);
    assert!(d3 > 0.99, "3 paths must deliver: {d3}");
    assert!(f3 <= f2 + 1e-9, "3 paths late {f3} vs 2 paths {f2}");
    assert!(d3 >= d2 - 1e-9);
    // All three paths participate.
    for (k, s) in shares3.iter().enumerate() {
        assert!(*s > 0.1, "path {k} share {s} too small: {shares3:?}");
    }
}
