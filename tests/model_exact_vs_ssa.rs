//! The strongest correctness check in the repository: solve a **reduced**
//! DMP model exactly (sparse CTMC stationary solver, the TANGRAM-II role)
//! and verify that the production stochastic-simulation path reproduces its
//! late fraction.
//!
//! The reduced model uses one TCP flow with a small window cap, a small
//! buffer cap `N_max`, and a deep deficit floor so the state space stays
//! enumerable. The SSA side runs the *actual* [`DmpSsa`] machinery (same
//! chain code, same event picking), restricted to the same configuration.

use dmp_core::spec::PathSpec;
use tcp_model::chain::{TcpChain, TcpChainState};
use tcp_model::solver::{solve_stationary, Ctmc, SolveOptions};
use tcp_model::{DmpModel, DmpSsa};

/// One-flow DMP model as an enumerable CTMC: state = (chain state, buffer N
/// in `[floor, nmax]`, saturating at both ends).
struct MiniDmp {
    proto: TcpChain,
    mu: f64,
    nmax: i64,
    floor: i64,
}

impl MiniDmp {
    fn chain_rate(&self, s: &TcpChainState) -> f64 {
        let mut c = self.proto.clone();
        c.set_state(*s);
        c.rate()
    }
}

impl Ctmc for MiniDmp {
    type State = (TcpChainState, i64);

    fn initial(&self) -> Self::State {
        (self.proto.state(), 0)
    }

    fn transitions(&self, (x, n): &Self::State) -> Vec<(Self::State, f64)> {
        let mut out = Vec::new();
        // Consumption at rate µ (always active; saturate at the floor so the
        // space is finite — the floor is deep enough not to matter).
        let n_next = (*n - 1).max(self.floor);
        if n_next != *n {
            out.push(((*x, n_next), self.mu));
        }
        // Production: chain transitions are frozen at N = N_max.
        if *n < self.nmax {
            let rate = self.chain_rate(x);
            for (x2, prob, delivered) in self.proto.outcomes(*x) {
                let n2 = (*n + i64::from(delivered)).min(self.nmax);
                if prob > 0.0 {
                    out.push(((x2, n2), rate * prob));
                }
            }
        }
        out
    }
}

#[test]
fn exact_and_ssa_late_fractions_agree() {
    let path = PathSpec::from_ms(0.06, 200.0, 2.0);
    let wmax = 6;
    let mu = 18.0; // chain σ ≈ 20–25 pkt/s: a marginal, late-prone regime
    let tau_s = 1.0;

    // --- exact ---
    let mini = MiniDmp {
        proto: TcpChain::new(path, wmax),
        mu,
        nmax: (mu * tau_s).ceil() as i64,
        floor: -400,
    };
    let sol = solve_stationary(&mini, SolveOptions::default());
    // Consumption events see the stationary law (constant rate µ): a
    // consumption is late iff it happens with N ≤ 0.
    let f_exact = sol.prob_where(|&(_, n)| n <= 0);
    assert!(
        f_exact > 1e-4,
        "pick parameters with observable lateness: {f_exact}"
    );

    // --- SSA (the production path) ---
    let mut model = DmpModel::new(vec![path], mu, tau_s);
    model.wmax = wmax;
    let mut f_ssa_acc = 0.0;
    const REPS: u64 = 3;
    for seed in 0..REPS {
        let mut ssa = DmpSsa::new(&model, 1000 + seed);
        f_ssa_acc += ssa.run(600_000).f;
    }
    let f_ssa = f_ssa_acc / REPS as f64;

    let rel = (f_ssa - f_exact).abs() / f_exact;
    assert!(
        rel < 0.1,
        "SSA {f_ssa:.5} vs exact {f_exact:.5} (rel err {rel:.3})"
    );
}

#[test]
fn exact_solution_is_a_probability_distribution() {
    let mini = MiniDmp {
        proto: TcpChain::new(PathSpec::from_ms(0.08, 150.0, 2.0), 4),
        mu: 10.0,
        nmax: 12,
        floor: -60,
    };
    let sol = solve_stationary(&mini, SolveOptions::default());
    let total: f64 = sol.pi.iter().sum();
    assert!((total - 1.0).abs() < 1e-9);
    assert!(sol.pi.iter().all(|&p| p >= -1e-15));
    // The buffer must be able to reach its cap.
    let at_cap = sol.prob_where(|&(_, n)| n == 12);
    assert!(at_cap > 0.0, "N never reaches N_max");
}

#[test]
fn exact_late_fraction_decreases_with_buffer_cap() {
    let path = PathSpec::from_ms(0.06, 200.0, 2.0);
    let f_at = |nmax: i64| {
        let mini = MiniDmp {
            proto: TcpChain::new(path, 6),
            mu: 18.0,
            nmax,
            floor: -300,
        };
        let sol = solve_stationary(&mini, SolveOptions::default());
        sol.prob_where(|&(_, n)| n <= 0)
    };
    let f_small = f_at(6);
    let f_large = f_at(40);
    assert!(
        f_large < f_small,
        "larger startup buffer must reduce lateness: {f_large} !< {f_small}"
    );
}

/// The library's packaged exact solver must agree with this test file's
/// independent re-implementation of the reduced model.
#[test]
fn library_exact_dmp_matches_local_reimplementation() {
    let path = PathSpec::from_ms(0.06, 200.0, 2.0);
    let mini = MiniDmp {
        proto: TcpChain::new(path, 6),
        mu: 18.0,
        nmax: 18,
        floor: -400,
    };
    let sol = solve_stationary(&mini, SolveOptions::default());
    let f_local = sol.prob_where(|&(_, n)| n <= 0);

    let lib = tcp_model::ExactDmp::new(path, 6, 18.0, 1.0, -400);
    let f_lib = lib.late_fraction(SolveOptions::default()).f;
    assert!(
        (f_local - f_lib).abs() < 1e-9,
        "library {f_lib} vs local {f_local}"
    );
}
