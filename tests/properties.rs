//! Randomized property tests on the core data structures and invariants,
//! spanning the crates. Each property is exercised over many seeded-RNG
//! cases, so failures are reproducible from the printed case seed.

use dmp_core::metrics::{buffer_occupancy, late_fraction_arrival_order, late_fraction_playback};
use dmp_core::scheme::{DynamicQueue, ReorderBuffer, StaticSplitter, StreamPacket};
use dmp_core::spec::{PathSpec, VideoSpec};
use dmp_core::stats::summarize;
use dmp_core::trace::StreamTrace;
use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};
use tcp_model::chain::TcpChain;
use tcp_model::pftk;

const CASES: u64 = 64;

/// One RNG per case, derived from the property name and case index, so any
/// failure is reproducible in isolation.
fn case_rng(property: &str, case: u64) -> SmallRng {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in property.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    SmallRng::seed_from_u64(h ^ case)
}

fn usize_in(rng: &mut SmallRng, lo: usize, hi: usize) -> usize {
    lo + (rng.next_u64() as usize) % (hi - lo)
}

fn pkt(seq: u64) -> StreamPacket {
    StreamPacket {
        seq,
        gen_ns: seq * 1_000_000,
    }
}

/// The reorder buffer releases exactly the inserted set, in order,
/// regardless of arrival permutation, and counts every duplicate.
#[test]
fn reorder_buffer_is_a_sorting_network() {
    for case in 0..CASES {
        let mut rng = case_rng("reorder_buffer", case);
        let len = usize_in(&mut rng, 1, 200);
        let mut order: Vec<u64> = (0..len).map(|_| rng.next_u64() % 64).collect();
        let unique: std::collections::BTreeSet<u64> = order.iter().copied().collect();
        let dups = order.len() - unique.len();
        order.sort_by_key(|&s| s.wrapping_mul(0x9e3779b97f4a7c15)); // deterministic shuffle
        let mut rb = ReorderBuffer::new();
        let mut released = Vec::new();
        for s in &order {
            rb.insert(pkt(*s));
            while let Some(p) = rb.pop_ready() {
                released.push(p.seq);
            }
        }
        // Released = the maximal contiguous prefix of `unique` starting at 0.
        let mut expect = Vec::new();
        for (i, &s) in unique.iter().enumerate() {
            if s == i as u64 {
                expect.push(s)
            } else {
                break;
            }
        }
        assert_eq!(released, expect, "case {case}");
        assert_eq!(rb.duplicates(), dups as u64, "case {case}");
    }
}

/// The static splitter conserves packets and respects weights within one
/// packet of the ideal split.
#[test]
fn splitter_conserves_and_balances() {
    for case in 0..CASES {
        let mut rng = case_rng("splitter", case);
        let w1 = 1 + rng.next_u32() % 19;
        let w2 = 1 + rng.next_u32() % 19;
        let n = 1 + rng.next_u64() % 1999;
        let mut s = StaticSplitter::new(&[f64::from(w1), f64::from(w2)]);
        for i in 0..n {
            s.push(pkt(i));
        }
        assert_eq!(s.assigned(0) + s.assigned(1), n, "case {case}");
        let ideal0 = n as f64 * f64::from(w1) / f64::from(w1 + w2);
        assert!(
            (s.assigned(0) as f64 - ideal0).abs() <= 1.0 + 1e-9,
            "case {case}"
        );
        // Pulling everything returns each packet exactly once.
        let got = s.pull(0, usize::MAX).len() + s.pull(1, usize::MAX).len();
        assert_eq!(got as u64, n, "case {case}");
    }
}

/// The dynamic queue is strictly FIFO under arbitrary interleavings of
/// pushes and pulls.
#[test]
fn dynamic_queue_fifo() {
    for case in 0..CASES {
        let mut rng = case_rng("dynamic_queue", case);
        let ops = usize_in(&mut rng, 1, 300);
        let mut q = DynamicQueue::new();
        let mut next_push = 0u64;
        let mut next_pop = 0u64;
        for _ in 0..ops {
            let amount = usize_in(&mut rng, 0, 8);
            if rng.gen_bool(0.5) {
                q.push(pkt(next_push));
                next_push += 1;
            } else {
                for p in q.pull(amount) {
                    assert_eq!(p.seq, next_pop, "case {case}");
                    next_pop += 1;
                }
            }
        }
        assert_eq!(q.total_generated(), next_push, "case {case}");
        assert_eq!(next_push - next_pop, q.len() as u64, "case {case}");
    }
}

/// Late fractions are in [0,1] and monotone non-increasing in τ for any
/// delivery pattern.
#[test]
fn lateness_bounds_and_monotonicity() {
    for case in 0..CASES {
        let mut rng = case_rng("lateness", case);
        let n = usize_in(&mut rng, 5, 150);
        let delays: Vec<Option<u64>> = (0..n)
            .map(|_| rng.gen_bool(0.8).then(|| rng.next_u64() % 5_000))
            .collect();
        let mu = 20.0;
        let mut trace = StreamTrace::new(VideoSpec::new(mu), u64::MAX);
        for (i, d) in delays.iter().enumerate() {
            let gen = i as u64 * 50_000_000;
            trace.on_generated(i as u64, gen);
            if let Some(ms) = d {
                trace.on_arrival(i as u64, gen + ms * 1_000_000, 0);
            }
        }
        let mut prev = f64::INFINITY;
        for tau in [0.1, 0.5, 1.0, 2.0, 5.0] {
            let f = late_fraction_playback(trace.records(), tau);
            assert!((0.0..=1.0).contains(&f), "case {case}");
            assert!(f <= prev + 1e-12, "case {case}");
            prev = f;
            let fa = late_fraction_arrival_order(trace.records(), mu, tau);
            assert!((0.0..=1.0).contains(&fa), "case {case}");
        }
    }
}

/// Live-streaming invariant (paper §2.1): the client buffer never holds
/// more than µτ packets, for any delivery pattern.
#[test]
fn buffer_occupancy_respects_mu_tau() {
    for case in 0..CASES {
        let mut rng = case_rng("occupancy", case);
        let n = usize_in(&mut rng, 5, 150);
        let tau = (1 + rng.next_u64() % 79) as f64 / 10.0;
        let mu = 20.0;
        let mut trace = StreamTrace::new(VideoSpec::new(mu), u64::MAX);
        for i in 0..n {
            let gen = i as u64 * 50_000_000;
            let d = rng.next_u64() % 10_000;
            trace.on_generated(i as u64, gen);
            trace.on_arrival(i as u64, gen + d * 1_000_000, 0);
        }
        let occ = buffer_occupancy(trace.records(), tau);
        let cap = (mu * tau).ceil() as u64 + 1;
        assert!(
            occ.peak_pkts <= cap,
            "case {case}: peak {} > µτ {}",
            occ.peak_pkts,
            cap
        );
        assert!(occ.mean_pkts <= occ.peak_pkts as f64 + 1e-9, "case {case}");
    }
}

/// PFTK throughput is monotone decreasing in loss, RTT, and timeout.
#[test]
fn pftk_is_monotone() {
    for case in 0..CASES {
        let mut rng = case_rng("pftk", case);
        let p = rng.gen_range(0.001f64..0.2);
        let r = rng.gen_range(0.02f64..0.5);
        let to = rng.gen_range(1.0f64..4.0);
        let base = pftk::throughput_pps(&PathSpec {
            loss: p,
            rtt_s: r,
            to_ratio: to,
        });
        assert!(base > 0.0, "case {case}");
        let worse_p = pftk::throughput_pps(&PathSpec {
            loss: (p * 1.5).min(0.9),
            rtt_s: r,
            to_ratio: to,
        });
        let worse_r = pftk::throughput_pps(&PathSpec {
            loss: p,
            rtt_s: r * 1.5,
            to_ratio: to,
        });
        let worse_to = pftk::throughput_pps(&PathSpec {
            loss: p,
            rtt_s: r,
            to_ratio: to + 1.0,
        });
        assert!(worse_p < base, "case {case}");
        assert!(worse_r < base, "case {case}");
        assert!(worse_to <= base + 1e-12, "case {case}");
    }
}

/// The TCP chain's state stays within bounds and its outcome distributions
/// are proper for arbitrary loss rates.
#[test]
fn chain_state_invariants() {
    for case in 0..32 {
        let mut rng = case_rng("chain", case);
        let p = rng.gen_range(0.001f64..0.5);
        let steps = usize_in(&mut rng, 100, 2000);
        let mut step_rng = SmallRng::seed_from_u64(rng.next_u64());
        let wmax = 16;
        let mut chain = TcpChain::new(PathSpec::from_ms(p, 120.0, 2.5), wmax);
        for _ in 0..steps {
            let st = chain.state();
            assert!(st.w >= 1 && st.w <= wmax, "case {case}");
            assert!(st.ssthresh >= 2 && st.ssthresh <= wmax, "case {case}");
            assert!(st.stage < TcpChain::STAGES, "case {case}");
            let total: f64 = chain.outcomes(st).iter().map(|&(_, pr, _)| pr).sum();
            assert!((total - 1.0).abs() < 1e-9, "case {case}");
            let t = chain.step(&mut step_rng);
            assert!(t.delivered <= st.w.max(1), "case {case}");
            assert!(chain.rate() > 0.0, "case {case}");
        }
    }
}

/// Welford statistics agree with naive formulas.
#[test]
fn stats_match_naive() {
    for case in 0..CASES {
        let mut rng = case_rng("stats", case);
        let n = usize_in(&mut rng, 2, 100);
        let xs: Vec<f64> = (0..n).map(|_| rng.gen_range(-1e6f64..1e6)).collect();
        let s = summarize(&xs);
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        assert!(
            (s.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()),
            "case {case}"
        );
        assert!(
            (s.variance() - var).abs() < 1e-5 * (1.0 + var.abs()),
            "case {case}"
        );
    }
}
