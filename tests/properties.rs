//! Property-based tests (proptest) on the core data structures and
//! invariants, spanning the crates.

use dmp_core::metrics::{buffer_occupancy, late_fraction_arrival_order, late_fraction_playback};
use dmp_core::scheme::{DynamicQueue, ReorderBuffer, StaticSplitter, StreamPacket};
use dmp_core::spec::{PathSpec, VideoSpec};
use dmp_core::stats::summarize;
use dmp_core::trace::StreamTrace;
use proptest::prelude::*;
use tcp_model::chain::TcpChain;
use tcp_model::pftk;

fn pkt(seq: u64) -> StreamPacket {
    StreamPacket {
        seq,
        gen_ns: seq * 1_000_000,
    }
}

proptest! {
    /// The reorder buffer releases exactly the inserted set, in order,
    /// regardless of arrival permutation, and counts every duplicate.
    #[test]
    fn reorder_buffer_is_a_sorting_network(mut order in proptest::collection::vec(0u64..64, 1..200)) {
        let mut rb = ReorderBuffer::new();
        let unique: std::collections::BTreeSet<u64> = order.iter().copied().collect();
        let dups = order.len() - unique.len();
        order.sort_by_key(|&s| s.wrapping_mul(0x9e3779b97f4a7c15)); // deterministic shuffle
        let mut released = Vec::new();
        for s in &order {
            rb.insert(pkt(*s));
            while let Some(p) = rb.pop_ready() {
                released.push(p.seq);
            }
        }
        // Released = the maximal contiguous prefix of `unique` starting at 0.
        let mut expect = Vec::new();
        for (i, &s) in unique.iter().enumerate() {
            if s == i as u64 { expect.push(s) } else { break }
        }
        prop_assert_eq!(released, expect);
        prop_assert_eq!(rb.duplicates(), dups as u64);
    }

    /// The static splitter conserves packets and respects weights within
    /// one packet of the ideal split.
    #[test]
    fn splitter_conserves_and_balances(w1 in 1u32..20, w2 in 1u32..20, n in 1u64..2000) {
        let mut s = StaticSplitter::new(&[f64::from(w1), f64::from(w2)]);
        for i in 0..n {
            s.push(pkt(i));
        }
        prop_assert_eq!(s.assigned(0) + s.assigned(1), n);
        let ideal0 = n as f64 * f64::from(w1) / f64::from(w1 + w2);
        prop_assert!((s.assigned(0) as f64 - ideal0).abs() <= 1.0 + 1e-9);
        // Pulling everything returns each packet exactly once.
        let got = s.pull(0, usize::MAX).len() + s.pull(1, usize::MAX).len();
        prop_assert_eq!(got as u64, n);
    }

    /// The dynamic queue is strictly FIFO under arbitrary interleavings of
    /// pushes and pulls.
    #[test]
    fn dynamic_queue_fifo(ops in proptest::collection::vec((0usize..8, any::<bool>()), 1..300)) {
        let mut q = DynamicQueue::new();
        let mut next_push = 0u64;
        let mut next_pop = 0u64;
        for (amount, is_push) in ops {
            if is_push {
                q.push(pkt(next_push));
                next_push += 1;
            } else {
                for p in q.pull(amount) {
                    prop_assert_eq!(p.seq, next_pop);
                    next_pop += 1;
                }
            }
        }
        prop_assert_eq!(q.total_generated(), next_push);
        prop_assert_eq!(next_push - next_pop, q.len() as u64);
    }

    /// Late fractions are in [0,1] and monotone non-increasing in τ for any
    /// delivery pattern.
    #[test]
    fn lateness_bounds_and_monotonicity(delays in proptest::collection::vec(proptest::option::of(0u64..5_000), 5..150)) {
        let mu = 20.0;
        let mut trace = StreamTrace::new(VideoSpec::new(mu), u64::MAX);
        for (i, d) in delays.iter().enumerate() {
            let gen = i as u64 * 50_000_000;
            trace.on_generated(i as u64, gen);
            if let Some(ms) = d {
                trace.on_arrival(i as u64, gen + ms * 1_000_000, 0);
            }
        }
        let mut prev = f64::INFINITY;
        for tau in [0.1, 0.5, 1.0, 2.0, 5.0] {
            let f = late_fraction_playback(trace.records(), tau);
            prop_assert!((0.0..=1.0).contains(&f));
            prop_assert!(f <= prev + 1e-12);
            prev = f;
            let fa = late_fraction_arrival_order(trace.records(), mu, tau);
            prop_assert!((0.0..=1.0).contains(&fa));
        }
    }

    /// Live-streaming invariant (paper §2.1): the client buffer never holds
    /// more than µτ packets, for any delivery pattern.
    #[test]
    fn buffer_occupancy_respects_mu_tau(delays in proptest::collection::vec(0u64..10_000, 5..150), tau_ds in 1u64..80) {
        let mu = 20.0;
        let tau = tau_ds as f64 / 10.0;
        let mut trace = StreamTrace::new(VideoSpec::new(mu), u64::MAX);
        for (i, d) in delays.iter().enumerate() {
            let gen = i as u64 * 50_000_000;
            trace.on_generated(i as u64, gen);
            trace.on_arrival(i as u64, gen + d * 1_000_000, 0);
        }
        let occ = buffer_occupancy(trace.records(), tau);
        let cap = (mu * tau).ceil() as u64 + 1;
        prop_assert!(occ.peak_pkts <= cap, "peak {} > µτ {}", occ.peak_pkts, cap);
        prop_assert!(occ.mean_pkts <= occ.peak_pkts as f64 + 1e-9);
    }

    /// PFTK throughput is monotone decreasing in loss, RTT, and timeout.
    #[test]
    fn pftk_is_monotone(p in 0.001f64..0.2, r in 0.02f64..0.5, to in 1.0f64..4.0) {
        let base = pftk::throughput_pps(&PathSpec { loss: p, rtt_s: r, to_ratio: to });
        prop_assert!(base > 0.0);
        let worse_p = pftk::throughput_pps(&PathSpec { loss: (p * 1.5).min(0.9), rtt_s: r, to_ratio: to });
        let worse_r = pftk::throughput_pps(&PathSpec { loss: p, rtt_s: r * 1.5, to_ratio: to });
        let worse_to = pftk::throughput_pps(&PathSpec { loss: p, rtt_s: r, to_ratio: to + 1.0 });
        prop_assert!(worse_p < base);
        prop_assert!(worse_r < base);
        prop_assert!(worse_to <= base + 1e-12);
    }

    /// The TCP chain's state stays within bounds and its outcome
    /// distributions are proper for arbitrary loss rates.
    #[test]
    fn chain_state_invariants(p in 0.001f64..0.5, steps in 100usize..2000, seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let wmax = 16;
        let mut chain = TcpChain::new(PathSpec::from_ms(p, 120.0, 2.5), wmax);
        for _ in 0..steps {
            let st = chain.state();
            prop_assert!(st.w >= 1 && st.w <= wmax);
            prop_assert!(st.ssthresh >= 2 && st.ssthresh <= wmax);
            prop_assert!(st.stage < TcpChain::STAGES);
            let total: f64 = chain.outcomes(st).iter().map(|&(_, pr, _)| pr).sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
            let t = chain.step(&mut rng);
            prop_assert!(t.delivered <= st.w.max(1));
            prop_assert!(chain.rate() > 0.0);
        }
    }

    /// Welford statistics agree with naive formulas.
    #[test]
    fn stats_match_naive(xs in proptest::collection::vec(-1e6f64..1e6, 2..100)) {
        let s = summarize(&xs);
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        prop_assert!((s.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((s.variance() - var).abs() < 1e-5 * (1.0 + var.abs()));
    }
}
