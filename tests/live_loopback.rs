//! End-to-end tests of the real-socket implementation (tokio): the complete
//! scheme — shared queue, per-path senders with small kernel buffers, path
//! emulators, client reassembly — over loopback TCP.

use std::time::Duration;

use dmp_core::spec::VideoSpec;
use dmp_live::{run_experiment, LiveExperiment, PathProfile};

fn exp(rates: [f64; 2], mu: f64, packets: u64) -> LiveExperiment {
    LiveExperiment {
        video: VideoSpec {
            rate_pps: mu,
            packet_bytes: 1448,
        },
        packets,
        paths: vec![
            PathProfile::steady(rates[0], Duration::from_millis(25)),
            PathProfile::steady(rates[1], Duration::from_millis(25)),
        ],
        send_buf_bytes: 16 * 1024,
        seed: 9,
        time_dilation: 1.0,
        schedules: None,
        trace_label: None,
    }
}

#[test]
fn full_stream_is_reassembled_exactly_once() {
    tokio::runtime::Runtime::new().unwrap().block_on(async {
        // Demand (≈1.16 Mbps) exceeds either path alone (800 kbps), so both
        // paths must participate in the reassembled stream.
        let e = exp([800_000.0, 800_000.0], 100.0, 500);
        let run = run_experiment(&e, &[2.0]).await.unwrap();
        let trace = &run.output.trace;
        assert_eq!(trace.generated(), 500);
        assert_eq!(trace.delivered(), 500, "everything arrives");
        // Each sequence number delivered exactly once across the two sockets.
        let mut seen = vec![false; 500];
        for r in trace.records() {
            assert!(!seen[r.seq as usize]);
            seen[r.seq as usize] = true;
        }
        // Both paths participate when they are symmetric and fast.
        assert!(run.output.per_path_packets.iter().all(|&n| n > 50));
    })
}

#[test]
fn dead_path_degrades_to_single_path_streaming() {
    tokio::runtime::Runtime::new().unwrap().block_on(async {
        // One path is an order of magnitude slower than the stream needs — the
        // paper's extreme-heterogeneity discussion: DMP degenerates gracefully
        // into (mostly) single-path streaming instead of stalling.
        let e = exp([2_000_000.0, 60_000.0], 70.0, 400);
        let run = run_experiment(&e, &[3.0]).await.unwrap();
        let shares = run.output.trace.path_shares(2);
        // The slow path still carries whatever fits in the in-flight buffers
        // (SO_SNDBUF + kernel receive buffer + emulator queue) plus its trickle
        // of drained packets, and kernel buffer autotuning makes that amount
        // host-dependent. "Degenerates gracefully into mostly single-path"
        // therefore means a clear fast-path majority, not a fixed 85% cut.
        assert!(
            shares[0] > 2.0 * shares[1],
            "fast path must carry the clear majority: {shares:?}"
        );
        // Packets parked in the slow path's in-flight buffers (~90 at 60 kbps:
        // 64 KiB emulator queue + kernel send/receive buffers) cannot drain
        // within the run, on any host — so full delivery is not the invariant
        // here. The invariant is *no stall*: the fast path alone must move far
        // more than the slow path ever could (~45 packets in this window).
        assert!(
            run.output.trace.delivered() >= 250,
            "stream stalled: delivered only {}",
            run.output.trace.delivered()
        );
        // Packets that went over the healthy path arrived promptly; only the
        // slow path's trickle is tardy (those packets sat in its buffers for
        // seconds — unavoidable once committed to a 60 kbps pipe).
        let fast: Vec<_> = run
            .output
            .trace
            .records()
            .iter()
            .filter(|r| r.path == 0 && r.arrival_ns.is_some())
            .map(|r| (r.arrival_ns.unwrap(), r.gen_ns))
            .collect();
        assert!(!fast.is_empty());
        let late = fast
            .iter()
            .filter(|(arr, gen)| arr.saturating_sub(*gen) > 3_000_000_000)
            .count();
        let f = late as f64 / fast.len() as f64;
        assert!(f < 0.05, "late fraction on the fast path {f}");
    })
}

#[test]
fn lateness_reflects_headroom_in_live_runs() {
    tokio::runtime::Runtime::new().unwrap().block_on(async {
        // ~1.1× aggregate headroom: needs a real buffer; 2.5×: clean at once.
        let tight = exp([450_000.0, 450_000.0], 69.0, 350);
        let roomy = exp([1_000_000.0, 1_000_000.0], 69.0, 350);
        let run_tight = run_experiment(&tight, &[0.3]).await.unwrap();
        let run_roomy = run_experiment(&roomy, &[0.3]).await.unwrap();
        let f_tight = run_tight.report.per_tau[0].playback_order;
        let f_roomy = run_roomy.report.per_tau[0].playback_order;
        assert!(
            f_roomy <= f_tight,
            "roomy {f_roomy} should not be later than tight {f_tight}"
        );
        assert!(
            f_roomy < 0.02,
            "roomy run should be nearly clean: {f_roomy}"
        );
    })
}

#[test]
fn asymmetric_delays_reorder_across_paths_but_metrics_agree() {
    tokio::runtime::Runtime::new().unwrap().block_on(async {
        // 10 ms vs 120 ms one-way delays: packets constantly overtake each other
        // across paths. The Section 4.1 claim — arrival-order playback is a good
        // proxy for playback-time order — must survive heavy cross-path
        // reordering on real sockets.
        let e = LiveExperiment {
            video: VideoSpec {
                rate_pps: 80.0,
                packet_bytes: 1448,
            },
            packets: 400,
            // Tight aggregate headroom (≈1.08×) forces both paths into use, so
            // the 10 ms vs 120 ms delay gap produces real reordering.
            paths: vec![
                PathProfile::steady(500_000.0, Duration::from_millis(10)),
                PathProfile::steady(500_000.0, Duration::from_millis(120)),
            ],
            send_buf_bytes: 16 * 1024,
            seed: 77,
            time_dilation: 1.0,
            schedules: None,
            trace_label: None,
        };
        let run = run_experiment(&e, &[1.0]).await.unwrap();
        let trace = &run.output.trace;
        assert!(trace.delivered() >= 390, "delivered {}", trace.delivered());

        // Verify cross-path reordering actually happened: some packet with a
        // larger seq arrived before a smaller one.
        let mut arrivals: Vec<(u64, u64)> = trace
            .records()
            .iter()
            .filter_map(|r| r.arrival_ns.map(|a| (a, r.seq)))
            .collect();
        arrivals.sort_unstable();
        let inversions = arrivals.windows(2).filter(|w| w[1].1 < w[0].1).count();
        assert!(
            inversions > 5,
            "expected cross-path reordering, got {inversions} inversions"
        );

        // The two lateness views stay close (absolute difference small).
        let lf = &run.report.per_tau[0];
        assert!(
            (lf.playback_order - lf.arrival_order).abs() < 0.05,
            "playback {} vs arrival {}",
            lf.playback_order,
            lf.arrival_order
        );
    })
}
